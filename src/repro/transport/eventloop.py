"""Selector-driven event loop for comm-node processes.

One internal process owns many links — its parent, every child, plus
in-process channels under the threaded runtime.  The original runtime
spent one reader thread per TCP link and drove :class:`NodeCore` from
a polled ``queue.Queue``; this module replaces all of that with a
single ``selectors.DefaultSelector`` loop per process, mirroring how
the real ``mrnet_commnode`` multiplexes its socket set with
``select``:

* every TCP link is a non-blocking socket registered with the
  selector (:class:`SelectorLink`), read incrementally into a frame
  reassembly buffer and written through a bounded send queue with
  vectored ``sendmsg`` writes — no frame-join copy, no per-link
  thread;
* in-process :class:`~repro.transport.channel.Channel` deliveries
  interrupt the selector through a wakeup socketpair hooked onto the
  node's :class:`~repro.transport.channel.Inbox`;
* time-based work (TimeOut synchronization filters, the adaptive
  flush window) is scheduled by deadline: the selector sleeps exactly
  until the earliest one instead of spinning on a short poll.

The loop applies the adaptive flush policy (see
:mod:`repro.core.batching`): while inbound events keep arriving,
output buffers are allowed to accumulate up to the size/delay bounds
so bursty fan-in produces genuinely larger upstream messages; the
moment the loop would go idle, everything flushes, so light traffic
never waits on a batching timer.

Backpressure: each link's send queue is bounded
(``SEND_QUEUE_MAX_BYTES``).  :meth:`SelectorLink.send_capacity` lets
``NodeCore.flush`` *check before encoding* and keep packets parked in
their ``PacketBuffer`` (counted in the ``send_queue_full`` stat)
rather than buffering unboundedly toward a slow consumer.

Colocation: one loop can host *many* NodeCores (``bind`` is additive).
Every link records its owning core (``link._core``), the loop's timers
take the minimum deadline across hosted cores, and links between two
hosted cores can be :class:`~repro.transport.inproc.InprocLink` pairs
(see :meth:`EventLoop.add_inproc_pair`) — a send is then a deque
append, no syscall at all.  CPU-heavy filter transforms can be
sharded to a :class:`~repro.transport.workers.FilterWorkerPool`
(``workers=N``) so one big ndarray reduction never stalls colocated
siblings; completions are re-entered on the loop thread.
"""

from __future__ import annotations

import collections
import errno
import itertools
import logging
import queue
import selectors
import socket
import struct
import threading
import time
from typing import Deque, Dict, List, Optional

from ..obs.metrics import MetricsRegistry, StatsView
from .tcp import _alloc_link_id

__all__ = [
    "EventLoop",
    "SelectorLink",
    "ShmLink",
    "SendQueueFull",
    "SEND_QUEUE_MAX_BYTES",
]

log = logging.getLogger(__name__)

_LEN = struct.Struct(">I")
_MAX_FRAME = 1 << 30
_RECV_CHUNK = 1 << 18
# One sendmsg call gathers at most this many buffers (IOV_MAX safety).
_SENDMSG_MAX_BUFFERS = 128

SEND_QUEUE_MAX_BYTES = 4 << 20


class SendQueueFull(RuntimeError):
    """A bounded per-link send queue refused a payload.

    Deliberately *not* a ``ConnectionError``: the link is healthy,
    just congested — callers should keep the data and retry, not drop
    it or tear the link down.
    """


class SelectorLink:
    """One non-blocking socket owned by an :class:`EventLoop`.

    Presents the ``ChannelEnd`` interface (``link_id`` / ``send`` /
    ``close`` / ``closed``) so a :class:`~repro.core.commnode.NodeCore`
    can use it as a parent or child link unchanged.
    """

    #: Transport classification for the obs ``links{kind=...}`` census.
    transport_kind = "tcp"
    #: Dispatch flag for the loop: False = framed socket reads.
    _shm = False
    #: Dispatch flag: True only for same-loop InprocLink pairs.
    _inproc = False

    __slots__ = (
        "link_id",
        "max_send_bytes",
        "_loop",
        "_core",
        "_sock",
        "_out",
        "_out_nbytes",
        "_rbuf",
        "_closed",
        "_writing",
    )

    def __init__(
        self,
        loop: "EventLoop",
        sock: socket.socket,
        link_id: int,
        max_send_bytes: int = SEND_QUEUE_MAX_BYTES,
    ):
        sock.setblocking(False)
        self.link_id = link_id
        self.max_send_bytes = max_send_bytes
        self._loop = loop
        self._core = None  # owning NodeCore; claimed at bind if unset
        self._sock = sock
        self._out: Deque[memoryview] = collections.deque()
        self._out_nbytes = 0
        self._rbuf = bytearray()
        self._closed = False
        self._writing = False

    # -- ChannelEnd interface ---------------------------------------------

    def send(self, payload: bytes) -> None:
        """Queue one framed payload for non-blocking transmission.

        An empty queue accepts any single payload (so a message larger
        than the bound can still leave); a non-empty queue refuses
        payloads that would exceed ``max_send_bytes`` with
        :class:`SendQueueFull`.

        When the queue is empty and we are on the loop thread, the
        frame is written to the socket *inline* (optimistic vectored
        send).  The common case — an uncongested link — then costs one
        ``sendmsg`` and never touches the selector; write interest is
        registered only for whatever the kernel would not take.
        """
        if self._closed:
            raise ConnectionError(f"link {self.link_id} is closed")
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError("channel payloads must be bytes")
        n = len(payload)
        if self._out_nbytes and self._out_nbytes + n + _LEN.size > self.max_send_bytes:
            raise SendQueueFull(
                f"link {self.link_id}: send queue holds {self._out_nbytes} "
                f"bytes, refusing {n} more (bound {self.max_send_bytes})"
            )
        self._out.append(memoryview(_LEN.pack(n)))
        self._out.append(memoryview(payload))
        self._out_nbytes += n + _LEN.size
        loop = self._loop
        if self._out_nbytes == n + _LEN.size and (
            loop._thread_id is None or threading.get_ident() == loop._thread_id
        ):
            try:
                loop._pump_out(self)
            except OSError:
                # Leave the frames queued; the selector's write/read
                # handling will surface the dead link.
                pass
            if not self._out:
                return
        loop._request_write(self)

    def send_capacity(self) -> int:
        """Bytes the send queue can still accept without refusing.

        An empty queue reports its full bound; callers compare the
        encoded message size against this *before* encoding, which is
        how ``NodeCore.flush`` applies backpressure losslessly.
        """
        if self._out_nbytes == 0:
            return self.max_send_bytes
        return max(0, self.max_send_bytes - self._out_nbytes)

    @property
    def send_backlog(self) -> int:
        """Bytes currently queued toward the socket."""
        return self._out_nbytes

    def link_metrics(self) -> dict:
        """Point-in-time transport numbers for this link (JSON-able)."""
        return {
            "link_id": self.link_id,
            "send_backlog_bytes": self._out_nbytes,
            "closed": self._closed,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._loop._forget(self)
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return (
            f"SelectorLink(id={self.link_id}, backlog={self._out_nbytes}B"
            f"{', closed' if self._closed else ''})"
        )


class ShmLink:
    """A co-located link driven by the event loop over shared memory.

    Payload frames move through a pair of SPSC rings (see
    :mod:`repro.transport.shm`); the TCP socket the link was
    negotiated on stays registered with the selector purely as a
    *doorbell* — one byte wakes the consumer when the ring goes
    non-empty, one byte credits a stalled producer when space frees,
    and EOF reports peer death through the same selector path a TCP
    link would use.

    Presents the same ``ChannelEnd`` interface as
    :class:`SelectorLink`.  When the transmit ring is full the frame
    is parked in a bounded overflow deque (``SendQueueFull`` past the
    bound, exactly like the TCP send queue) and pumped into the ring
    as credit doorbells arrive.
    """

    #: Transport classification for the obs ``links{kind=...}`` census.
    transport_kind = "shm"
    #: Dispatch flag for the loop: True = ring reads, doorbell socket.
    _shm = True
    #: Dispatch flag: True only for same-loop InprocLink pairs.
    _inproc = False

    __slots__ = (
        "link_id",
        "max_send_bytes",
        "_loop",
        "_core",
        "_sock",
        "_tx",
        "_rx",
        "_owner",
        "_out",
        "_out_nbytes",
        "_closed",
        "_writing",
    )

    def __init__(
        self,
        loop: "EventLoop",
        sock: socket.socket,
        tx,
        rx,
        link_id: int,
        owner: bool = False,
        max_send_bytes: int = SEND_QUEUE_MAX_BYTES,
    ):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # e.g. a socketpair doorbell in tests
        sock.setblocking(False)
        self.link_id = link_id
        self.max_send_bytes = max_send_bytes
        self._loop = loop
        self._core = None  # owning NodeCore; claimed at bind if unset
        self._sock = sock
        self._tx = tx
        self._rx = rx
        self._owner = owner
        self._out: Deque[bytes] = collections.deque()
        self._out_nbytes = 0
        self._closed = False
        self._writing = False  # parity with SelectorLink; never selector-armed

    # -- ChannelEnd interface ---------------------------------------------

    def send(self, payload) -> None:
        """Write one framed payload into the ring, or park it.

        The fast path is a single ``try_write`` into shared memory —
        no syscall at all unless the ring was empty (doorbell).  A
        full ring parks the frame in the overflow deque; the bound
        semantics mirror :meth:`SelectorLink.send` (an empty queue
        accepts any single payload).
        """
        if self._closed:
            raise ConnectionError(f"link {self.link_id} is closed")
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError("channel payloads must be bytes")
        n = len(payload)
        if self._out_nbytes and self._out_nbytes + n + _LEN.size > self.max_send_bytes:
            raise SendQueueFull(
                f"link {self.link_id}: send queue holds {self._out_nbytes} "
                f"bytes, refusing {n} more (bound {self.max_send_bytes})"
            )
        if not self._out:
            try:
                ok, was_empty = self._tx.try_write(payload)
            except ValueError as exc:
                # Released mapping (concurrent close) or a frame larger
                # than the ring: either way this link cannot carry it.
                raise ConnectionError(str(exc)) from exc
            if ok:
                loop = self._loop
                loop._c_writes.value += 1
                loop._c_bytes_out.value += n + _LEN.size
                if was_empty:
                    self._doorbell()
                return
        # Ring full: try_write set the stalled flag, so the peer sends
        # a credit doorbell once it drains; the loop pumps us then.
        self._out.append(payload if isinstance(payload, bytes) else bytes(payload))
        self._out_nbytes += n + _LEN.size

    def send_capacity(self) -> int:
        """Bytes the overflow queue can still accept without refusing."""
        if self._out_nbytes == 0:
            return self.max_send_bytes
        return max(0, self.max_send_bytes - self._out_nbytes)

    @property
    def send_backlog(self) -> int:
        """Bytes parked beyond the ring (overflow deque)."""
        return self._out_nbytes

    def link_metrics(self) -> dict:
        """Point-in-time transport numbers for this link (JSON-able)."""
        return {
            "link_id": self.link_id,
            "kind": "shm",
            "send_backlog_bytes": self._out_nbytes,
            "closed": self._closed,
        }

    def _doorbell(self) -> None:
        try:
            self._sock.send(b"\x01")
        except (BlockingIOError, InterruptedError):
            pass  # socket buffer full: doorbells are already pending
        except OSError:
            pass  # dying link: the selector surfaces it via EOF

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._loop._forget(self)
        self._tx.mark_closed()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._release_rings()

    def _release_rings(self) -> None:
        for ring in (self._tx, self._rx):
            ring.close()
            # Both sides unlink (double unlink is caught): segments
            # must not outlive the link when the creator was killed.
            ring.unlink()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return (
            f"ShmLink(id={self.link_id}, backlog={self._out_nbytes}B"
            f"{', closed' if self._closed else ''})"
        )


class _Acceptor:
    """Selector registration for a listening socket.

    Late children — back-end leaf attaches during recursive
    instantiation, repair reconnects — are accepted on the loop
    thread and admitted as links without a dedicated accept thread.
    """

    __slots__ = ("listener", "remaining", "allow_shm", "core")

    def __init__(
        self, listener, remaining: Optional[int], allow_shm: bool, core=None
    ):
        self.listener = listener
        self.remaining = remaining
        self.allow_shm = allow_shm
        self.core = core  # admitting NodeCore; the loop default if None


class EventLoop:
    """One selector multiplexing all of a node's links and timers.

    Usage::

        loop = EventLoop()
        parent = loop.add_socket(parent_sock)        # SelectorLink
        core = NodeCore(..., parent=parent, inbox=loop_inbox)
        for sock in child_socks:
            core.add_child(loop.add_socket(sock))
        loop.bind(core)
        loop.run()        # until core.shutting_down

    ``iterations`` counts selector wakeups — tests use it to prove the
    loop sleeps until real deadlines instead of spinning.
    """

    # Safety cap on one select sleep: bounds the damage of any missed
    # wakeup to 50 ms without ever busy-waiting.
    IDLE_TIMEOUT = 0.05

    def __init__(self, clock=None, workers: int = 0):
        self.clock = clock or time.monotonic
        #: First bound core (single-node back-compat alias).
        self.core = None
        #: Every core hosted on this loop, in bind order.
        self.cores: List = []
        self._finished: set = set()  # id(core) of cores already torn down
        self.iterations = 0
        # Typed transport registry behind the legacy ``stats`` mapping;
        # the hot read/write paths bump pre-bound counters.
        self.metrics = MetricsRegistry()
        self._c_frames_in = self.metrics.counter("frames_in", "Framed messages read off sockets")
        self._c_bytes_in = self.metrics.counter("bytes_in", "Bytes read off sockets")
        self._c_writes = self.metrics.counter("writes", "sendmsg calls issued")
        self._c_bytes_out = self.metrics.counter("bytes_out", "Bytes written to sockets")
        self._c_wakeups = self.metrics.counter("wakeups", "Wakeup-pipe interrupts handled")
        self._c_shm_zero_copy = self.metrics.counter(
            "shm_frames_zero_copy",
            "Inbound shm frames delivered as ring-aliasing memoryviews "
            "(no copy out of shared memory)",
        )
        self.metrics.gauge("links_registered", "Sockets currently owned by this loop", fn=lambda: len(self._links))
        self.metrics.gauge(
            "send_backlog_bytes",
            "Bytes parked in all link send queues",
            fn=lambda: sum(l._out_nbytes for l in self._links.values()),
        )
        self.metrics.gauge(
            "cores_hosted",
            "NodeCores multiplexed onto this loop (1 solo, >1 colocated)",
            fn=lambda: len(self.cores),
        )
        self.metrics.gauge(
            "threads_per_node",
            "Steady-state OS threads (loop + filter workers) per hosted node",
            fn=lambda: (1 + (self.worker_pool.n_workers if self.worker_pool else 0))
            / max(1, len(self.cores)),
        )
        #: Optional pool CPU-heavy filter transforms are sharded to.
        self.worker_pool = None
        if workers:
            from .workers import FilterWorkerPool

            self.worker_pool = FilterWorkerPool(
                workers, wake=self.wake, registry=self.metrics
            )
        self.stats = StatsView(self.metrics)
        self._selector = selectors.DefaultSelector()
        self._links: Dict[int, SelectorLink] = {}
        # Shm links are additionally kept here: their rings are polled
        # once per iteration (doorbells are an optimization, not the
        # only wakeup path).
        self._shm_links: Dict[int, "ShmLink"] = {}
        # Inproc links whose receive deque went non-empty (or whose
        # peer closed) since the last drain; single-thread list, only
        # ever appended off-thread under the GIL followed by a wake.
        self._inproc_ready: List = []
        self._thread_id: Optional[int] = None
        self._wake_lock = threading.Lock()
        self._wake_pending = False
        self._deferred_writes: List[SelectorLink] = []
        self._pending_adoptions: List[tuple] = []
        wake_recv, wake_send = socket.socketpair()
        wake_recv.setblocking(False)
        wake_send.setblocking(False)
        self._wake_recv = wake_recv
        self._wake_send = wake_send
        self._selector.register(wake_recv, selectors.EVENT_READ, None)

    # -- wiring -----------------------------------------------------------

    def add_socket(
        self,
        sock: socket.socket,
        max_send_bytes: Optional[int] = None,
        core=None,
    ) -> SelectorLink:
        """Register a connected socket; returns its ChannelEnd-like link.

        *core* names the hosted NodeCore inbound frames belong to; it
        defaults to the loop's first bound core (links created before
        ``bind`` are claimed by the first core bound).
        """
        if max_send_bytes is None:
            max_send_bytes = SEND_QUEUE_MAX_BYTES
        link = SelectorLink(self, sock, _alloc_link_id(), max_send_bytes)
        link._core = core if core is not None else self.core
        self._links[link.link_id] = link
        self._selector.register(sock, selectors.EVENT_READ, link)
        return link

    def add_shm_link(
        self,
        sock: socket.socket,
        tx,
        rx,
        owner: bool = False,
        max_send_bytes: Optional[int] = None,
        core=None,
    ) -> "ShmLink":
        """Register a negotiated shared-memory link (see
        :func:`repro.transport.shm.offer_shm`); *sock* becomes its
        doorbell.  ``owner=True`` on the side that created the
        segments — it unlinks them at close."""
        if max_send_bytes is None:
            max_send_bytes = SEND_QUEUE_MAX_BYTES
        link = ShmLink(self, sock, tx, rx, _alloc_link_id(), owner, max_send_bytes)
        link._core = core if core is not None else self.core
        self._links[link.link_id] = link
        self._shm_links[link.link_id] = link
        self._selector.register(sock, selectors.EVENT_READ, link)
        return link

    def add_inproc_pair(self, core_a=None, core_b=None, max_send_bytes=None):
        """Create a same-loop in-process link pair (colocated edge).

        Returns ``(end_a, end_b)`` — two
        :class:`~repro.transport.inproc.InprocLink` ends whose sends
        are deque appends delivered on the next loop iteration.  Both
        ends live on *this* loop; *core_a* / *core_b* are the hosted
        cores each end delivers to (claimable later via ``_core``).
        """
        from .inproc import InprocLink

        if max_send_bytes is None:
            max_send_bytes = SEND_QUEUE_MAX_BYTES
        a = InprocLink(self, _alloc_link_id(), max_send_bytes)
        b = InprocLink(self, _alloc_link_id(), max_send_bytes)
        a._peer, b._peer = b, a
        a._core, b._core = core_a, core_b
        self._links[a.link_id] = a
        self._links[b.link_id] = b
        return a, b

    def add_acceptor(
        self,
        listener,
        remaining: Optional[int] = None,
        allow_shm: bool = True,
        core=None,
    ) -> None:
        """Accept inbound connections on the loop thread.

        Each accepted connection (hello consumed, shm negotiation
        honored when *allow_shm*) becomes a child link via
        ``core.add_child``.  With *remaining* set, the listener is
        unregistered after that many accepts (it stays open — the
        owner closes it); ``None`` accepts forever, which is what
        repair reconnection wants.
        """
        self._selector.register(
            listener._server,
            selectors.EVENT_READ,
            _Acceptor(listener, remaining, allow_shm, core),
        )

    def adopt_socket(
        self, sock: socket.socket, core=None, adopted: bool = True
    ) -> None:
        """Hand this loop a new *child* socket from another thread.

        Tree repair: the recovery coordinator connects an orphan to
        this node and delivers the adopter-side socket here.  Selector
        registration and ``core.add_child`` happen on the loop thread
        (selector sets are not safe to mutate mid-``select``), at the
        next wakeup.  ``adopted=False`` marks a voluntary join (not an
        orphan repair), so adoption accounting stays truthful.
        """
        with self._wake_lock:
            self._pending_adoptions.append((sock, core, adopted))
        self.wake()

    def bind(self, core) -> None:
        """Attach a NodeCore this loop drives; hooks its inbox wakeup.

        Additive: a colocated loop hosts many cores, one ``bind`` each.
        The first bound core stays reachable as ``loop.core`` and
        claims any links registered before binding.  Also registers
        this loop's transport metrics as an extra snapshot provider on
        the core (series gain a ``loop_`` prefix), so one
        ``STATS_SNAPSHOT`` reply carries both layers.
        """
        if self.core is None:
            self.core = core
            for link in self._links.values():
                if link._core is None:
                    link._core = core
        self.cores.append(core)
        core.inbox.on_deliver = self.wake
        if self.worker_pool is not None and getattr(core, "worker_pool", 1) is None:
            core.worker_pool = self.worker_pool
            core.drain_worker_completions = self._drain_completions
        extra = getattr(core, "extra_metrics", None)
        if extra is not None:
            extra.append(self._prefixed_snapshot)

    def core_finished(self, core) -> bool:
        """True once *core* has been torn down by this loop."""
        return id(core) in self._finished

    def _prefixed_snapshot(self) -> dict:
        """This loop's registry snapshot with every key ``loop_``-prefixed."""
        snap = self.metrics.snapshot()
        return {
            kind: {f"loop_{key}": value for key, value in series.items()}
            for kind, series in snap.items()
        }

    def wake(self) -> None:
        """Interrupt a blocked ``select`` (thread-safe, coalescing)."""
        with self._wake_lock:
            if self._wake_pending:
                return
            self._wake_pending = True
        try:
            self._wake_send.send(b"\0")
        except (BlockingIOError, OSError):  # pragma: no cover - full pipe
            pass

    # -- write-interest management ----------------------------------------

    def _request_write(self, link: SelectorLink) -> None:
        if link._writing or link._closed:
            return
        if self._thread_id is None or threading.get_ident() == self._thread_id:
            self._enable_write(link)
        else:
            # Another thread queued data: the selector set is not safe
            # to mutate mid-select, so defer to the loop thread.
            with self._wake_lock:
                self._deferred_writes.append(link)
            self.wake()

    def _enable_write(self, link: SelectorLink) -> None:
        if link._writing or link._closed:
            return
        link._writing = True
        self._selector.modify(
            link._sock, selectors.EVENT_READ | selectors.EVENT_WRITE, link
        )

    def _disable_write(self, link: SelectorLink) -> None:
        if not link._writing or link._closed:
            return
        link._writing = False
        self._selector.modify(link._sock, selectors.EVENT_READ, link)

    def _forget(self, link: SelectorLink) -> None:
        self._links.pop(link.link_id, None)
        self._shm_links.pop(link.link_id, None)
        sock = getattr(link, "_sock", None)  # InprocLink has none
        if sock is None:
            return
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError, OSError):
            pass

    # -- the loop ---------------------------------------------------------

    def run(self) -> None:
        """Drive every bound core until all have shut down or crashed."""
        if not self.cores:
            raise RuntimeError("EventLoop.run before bind(core)")
        self._thread_id = threading.get_ident()
        busy = False
        try:
            while True:
                active = [c for c in self.cores if id(c) not in self._finished]
                if not active:
                    break
                self.iterations += 1
                timeout = (
                    0.0
                    if busy or self._inproc_ready
                    else self._select_timeout(active)
                )
                events = self._selector.select(timeout)
                worked = False
                for key, mask in events:
                    link = key.data
                    if link is None:
                        self._on_wakeup()
                        continue
                    if isinstance(link, _Acceptor):
                        worked |= self._handle_accept(link)
                        continue
                    if link._shm:
                        if mask & selectors.EVENT_READ:
                            worked |= self._handle_doorbell(link)
                        continue
                    if mask & selectors.EVENT_READ:
                        worked |= self._handle_read(link)
                    if mask & selectors.EVENT_WRITE and not link._closed:
                        self._handle_write(link)
                for link in list(self._shm_links.values()):
                    worked |= self._poll_shm(link)
                worked |= self._drain_inproc()
                for core in active:
                    if core.crashed or core.shutting_down:
                        continue
                    core.admit_pending_children()
                    worked |= self._drain_inbox(core)
                    # O(active) tick: poll_streams walks only the
                    # core's armed-deadline set (empty for idle cores),
                    # so thousands of idle streams cost nothing here.
                    core.poll_streams()
                    core.heartbeat_tick()
                worked |= self._drain_completions() > 0
                for core in active:
                    if core.crashed or core.shutting_down:
                        # A finished core's inproc ends propagate EOF to
                        # colocated peers through the ready list, so
                        # survivors keep running on this same loop.
                        self._finish_core(core)
                    elif worked:
                        core.maybe_flush()
                    else:
                        # Going idle: ship everything, batching window over.
                        core.flush()
                busy = worked
        finally:
            for core in self.cores:
                self._finish_core(core)
            self._shutdown_selector()

    def _finish_core(self, core) -> None:
        """Tear down one hosted core (idempotent).

        A crashed core dies abruptly — no flush, no goodbye; peers
        find out via EOF exactly like a SIGKILLed process.  A cleanly
        shutting-down core flushes, gets a bounded window to drain its
        socket send queues, then closes its ends.
        """
        if id(core) in self._finished:
            return
        self._finished.add(id(core))
        if core.crashed:
            core.close_all()
        else:
            core.flush()
            self._drain_outbound(
                [
                    l
                    for l in self._links.values()
                    if l._core is core and not l._inproc
                ]
            )
            core.close_all()
        # Safety net: loop links still recorded against this core that
        # close_all didn't know about (e.g. never attached).
        for link in [l for l in list(self._links.values()) if l._core is core]:
            link.close()
        if core.inbox.on_deliver is self.wake:
            core.inbox.on_deliver = None

    def _select_timeout(self, cores=None) -> float:
        deadline = None
        for core in cores if cores is not None else self.cores:
            # next_timeout_deadline is a heap peek over armed
            # deadlines — O(1) per core, not O(streams).
            for candidate in (
                core.next_timeout_deadline(),
                core.next_flush_deadline,  # property
                core.next_heartbeat_deadline(),
            ):
                if candidate is not None and (
                    deadline is None or candidate < deadline
                ):
                    deadline = candidate
        if deadline is None:
            return self.IDLE_TIMEOUT
        return min(max(deadline - self.clock(), 0.0), self.IDLE_TIMEOUT)

    def _on_wakeup(self) -> None:
        self._c_wakeups.value += 1
        with self._wake_lock:
            self._wake_pending = False
            deferred, self._deferred_writes = self._deferred_writes, []
            adoptions, self._pending_adoptions = self._pending_adoptions, []
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass
        for link in deferred:
            self._enable_write(link)
        for sock, core, adopted in adoptions:
            core = core if core is not None else self.core
            link = self.add_socket(sock, core=core)
            core.add_child(link)
            if adopted:
                core.stats["orphans_adopted"] += 1
            log.info(
                "%s: adopted orphan socket as link %d",
                core.name,
                link.link_id,
            )

    def _drain_inbox(self, core=None) -> bool:
        """Dispatch in-process channel deliveries queued on the inbox."""
        core = core if core is not None else self.core
        worked = False
        while not (core.shutting_down or core.crashed):
            try:
                link_id, payload = core.inbox.get_nowait()
            except queue.Empty:
                break
            core.handle_payload(link_id, payload)
            worked = True
        return worked

    # -- in-process links (colocated peers) --------------------------------

    def _note_inproc(self, link) -> None:
        """Mark an inproc end ready (frames queued or peer closed)."""
        if link._pending:
            return
        link._pending = True
        self._inproc_ready.append(link)
        if self._thread_id is not None and threading.get_ident() != self._thread_id:
            self.wake()

    def _drain_inproc(self) -> bool:
        """Deliver queued inproc frames (and EOFs) to their cores.

        Delivery can enqueue more inproc traffic (a reduction hop
        forwarding to its colocated parent), so the ready list is
        re-swapped until a pass produces nothing — one loop iteration
        moves a whole colocated wave as far as it can go.
        """
        worked = False
        while self._inproc_ready:
            ready, self._inproc_ready = self._inproc_ready, []
            for link in ready:
                link._pending = False
                if link._closed:
                    link._rx.clear()
                    link._rx_nbytes = 0
                    continue
                core = link._core if link._core is not None else self.core
                dead = core is None or id(core) in self._finished
                rx = link._rx
                while rx:
                    frame = rx.popleft()
                    link._rx_nbytes -= len(frame) + _LEN.size
                    if dead:
                        continue
                    self._c_frames_in.value += 1
                    self._c_bytes_in.value += len(frame) + _LEN.size
                    core.handle_payload(link.link_id, frame)
                    worked = True
                if link._peer_closed and not link._closed:
                    link._closed = True
                    self._forget(link)
                    if not dead:
                        core.handle_payload(link.link_id, None)
                        worked = True
        return worked

    def _drain_completions(self) -> int:
        """Run parked worker-pool completions on the loop thread."""
        pool = self.worker_pool
        if pool is None:
            return 0
        return pool.drain_completed()

    # -- socket reads -----------------------------------------------------

    def _handle_read(self, link: SelectorLink) -> bool:
        try:
            data = link._sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return False
        except OSError:
            data = b""
        if not data:
            self._link_dead(link)
            return True
        self._c_bytes_in.value += len(data)
        core = link._core if link._core is not None else self.core
        rbuf = link._rbuf
        rbuf += data
        offset = 0
        view = memoryview(rbuf)
        try:
            while len(rbuf) - offset >= _LEN.size:
                (length,) = _LEN.unpack_from(rbuf, offset)
                if length > _MAX_FRAME:
                    log.warning(
                        "link %d: oversized frame (%d bytes); closing",
                        link.link_id,
                        length,
                    )
                    self._link_dead(link)
                    return True
                end = offset + _LEN.size + length
                if len(rbuf) < end:
                    break
                frame = bytes(view[offset + _LEN.size : end])
                offset = end
                core.handle_payload(link.link_id, frame)
                self._c_frames_in.value += 1
        finally:
            view.release()
            if offset:
                del rbuf[:offset]
        return True

    # -- shared-memory links ----------------------------------------------

    def _handle_accept(self, acc: _Acceptor) -> bool:
        """Readable listener: accept + hello + (maybe) shm upgrade."""
        try:
            sock, pair = acc.listener.accept_socket_ex(
                timeout=5.0, allow_shm=acc.allow_shm
            )
        except (OSError, ConnectionError, ValueError) as exc:
            log.warning("acceptor: failed to admit connection: %s", exc)
            return False
        core = acc.core if acc.core is not None else self.core
        if pair is not None:
            link = self.add_shm_link(sock, pair[0], pair[1], core=core)
        else:
            link = self.add_socket(sock, core=core)
        core.add_child(link)
        if acc.remaining is not None:
            acc.remaining -= 1
            if acc.remaining <= 0:
                try:
                    self._selector.unregister(acc.listener._server)
                except (KeyError, ValueError, OSError):  # pragma: no cover
                    pass
        return True

    def _handle_doorbell(self, link: "ShmLink") -> bool:
        """Readable doorbell socket: drain bytes, then poll the rings.

        Any byte may be a wakeup (ring went non-empty) or a credit (a
        stalled write can now retry); both are answered by one poll.
        EOF is peer death, exactly as for a TCP link.
        """
        eof = False
        while True:
            try:
                data = link._sock.recv(4096)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                data = b""
            if not data:
                eof = True
                break
            if len(data) < 4096:
                break
        worked = self._poll_shm(link)
        if eof and not link._closed:
            self._shm_dead(link)
            return True
        return worked

    def _poll_shm(self, link: "ShmLink") -> bool:
        """Pump parked writes and drain inbound frames for one link."""
        if link._closed:
            return False
        worked = False
        if link._out:
            worked |= self._pump_shm(link)
            if link._closed:
                return True
        rx = link._rx
        if rx.readable:
            # Zero-copy drain: frames arrive as memoryviews aliasing
            # the ring.  Anything the core keeps past this call parks
            # through a materialize() guard (batching buffers, sync
            # queues, chunk queues), so after delivery the consumer
            # cursor can be published and the bytes recycled.  Frames
            # consumed inline never get copied out of shared memory.
            frames = rx.read_frames_inplace()
            core = link._core if link._core is not None else self.core
            for frame in frames:
                self._c_frames_in.value += 1
                self._c_bytes_in.value += len(frame) + _LEN.size
                if type(frame) is memoryview:
                    self._c_shm_zero_copy.value += 1
                core.handle_payload(link.link_id, frame)
            if rx.commit_read():
                link._doorbell()
            worked |= bool(frames)
        if rx.peer_closed and not rx.readable and not link._closed:
            self._shm_dead(link)
            worked = True
        return worked

    def _pump_shm(self, link: "ShmLink") -> bool:
        """Move parked frames from the overflow deque into the ring."""
        out = link._out
        wrote = False
        while out:
            payload = out[0]
            try:
                ok, was_empty = link._tx.try_write(payload)
            except ValueError:
                self._shm_dead(link)
                return True
            if not ok:
                break
            out.popleft()
            link._out_nbytes -= len(payload) + _LEN.size
            self._c_writes.value += 1
            self._c_bytes_out.value += len(payload) + _LEN.size
            wrote = True
            if was_empty:
                link._doorbell()
        return wrote

    def _shm_dead(self, link: "ShmLink") -> None:
        """EOF / ring failure on a co-located link: deliver what the
        peer managed to write, then report the death to the core."""
        self._forget(link)
        core = link._core if link._core is not None else self.core
        if not link._closed:
            link._closed = True
            try:
                frames, _ = link._rx.read_frames()
            except Exception:
                frames = []
            for frame in frames:
                self._c_frames_in.value += 1
                self._c_bytes_in.value += len(frame) + _LEN.size
                core.handle_payload(link.link_id, frame)
            try:
                link._sock.close()
            except OSError:  # pragma: no cover
                pass
            link._release_rings()
        core.handle_payload(link.link_id, None)

    def _link_dead(self, link: SelectorLink) -> None:
        """EOF / error on a socket: unregister and tell the core."""
        self._forget(link)
        if not link._closed:
            link._closed = True
            try:
                link._sock.close()
            except OSError:  # pragma: no cover
                pass
        core = link._core if link._core is not None else self.core
        core.handle_payload(link.link_id, None)

    # -- socket writes ----------------------------------------------------

    def _handle_write(self, link: SelectorLink) -> None:
        try:
            self._pump_out(link)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            if getattr(exc, "errno", None) in (errno.EAGAIN, errno.EWOULDBLOCK):
                return
            self._link_dead(link)
            return
        if not link._out:
            self._disable_write(link)

    def _pump_out(self, link: SelectorLink) -> None:
        """Vectored non-blocking writes until the queue or socket is done."""
        out = link._out
        while out:
            bufs = list(itertools.islice(out, _SENDMSG_MAX_BUFFERS))
            try:
                sent = link._sock.sendmsg(bufs)
            except BlockingIOError:
                return
            self._c_writes.value += 1
            self._c_bytes_out.value += sent
            link._out_nbytes -= sent
            while sent:
                head = out[0]
                if sent >= len(head):
                    sent -= len(head)
                    out.popleft()
                else:
                    out[0] = head[sent:]
                    sent = 0

    def _drain_outbound(self, links=None, timeout: float = 1.0) -> None:
        """Best-effort blocking flush of send queues at shutdown.

        The SHUTDOWN broadcast to children is queued right before the
        loop exits; give the sockets a bounded window to take it.
        *links* restricts the drain to one core's ends (colocated
        loops tear cores down one at a time).
        """
        deadline = self.clock() + timeout
        for link in list(self._links.values()) if links is None else links:
            if link._inproc:
                continue  # peer frames are already in its deque
            if link._closed or not link._out:
                continue
            if link._shm:
                # Parked frames drain into the ring as the peer makes
                # room; briefly poll rather than arming the selector.
                while link._out and not link._closed and self.clock() < deadline:
                    if not self._pump_shm(link):
                        time.sleep(0.005)
                continue
            try:
                link._sock.setblocking(True)
                link._sock.settimeout(max(deadline - self.clock(), 0.01))
                self._pump_out(link)
            except OSError:
                pass

    def close(self) -> None:
        """Tear down a loop that never ran (failed or abandoned startup).

        ``run`` owns teardown once started; this frees the selector,
        wake pipe and worker pool of a loop whose thread was never
        launched, so construction failures don't leak fds or threads.
        """
        if self._thread_id is not None:
            return
        self._shutdown_selector()

    def _shutdown_selector(self) -> None:
        for link in list(self._links.values()):
            link.close()
        try:
            self._selector.unregister(self._wake_recv)
        except (KeyError, ValueError, OSError):  # pragma: no cover
            pass
        self._wake_recv.close()
        self._wake_send.close()
        self._selector.close()
        if self.worker_pool is not None:
            self.worker_pool.shutdown()
        for core in self.cores:
            if core.inbox.on_deliver is self.wake:
                core.inbox.on_deliver = None
        if self.core is not None and self.core.inbox.on_deliver is self.wake:
            self.core.inbox.on_deliver = None
