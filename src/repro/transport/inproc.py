"""In-process transport for colocated comm nodes.

When two comm nodes share one event loop (a ``--colocate`` subtree or
a colocated :class:`~repro.core.network.Network`), a link between them
never needs a socket, a ring, or even a lock: a send is a deque append
on the receiving end, and delivery happens on the very next loop
iteration.  :class:`InprocLink` is that hand-off — already-framed
batches move by reference, no syscalls, no copies.

Both ends of a pair MUST be owned by the *same* :class:`EventLoop`
(see :meth:`EventLoop.add_inproc_pair`): the deques are unlocked
single-thread structures.  Sends from other threads are still safe
only because the queuing side touches nothing but the peer's deque
under the GIL and then goes through the loop's thread-safe ``wake``;
the read side runs exclusively on the loop thread.

The ``ChannelEnd`` surface matches :class:`SelectorLink` — ``send`` /
``send_capacity`` / ``send_backlog`` / ``close`` / ``closed`` — so
``NodeCore`` backpressure and loss accounting apply unchanged, with
the same framing overhead constant (4 bytes/frame) counted against
``max_send_bytes``.
"""

from __future__ import annotations

import collections
import struct
from typing import Deque, Optional

from .eventloop import SEND_QUEUE_MAX_BYTES, SendQueueFull

__all__ = ["InprocLink"]

_LEN = struct.Struct(">I")


class InprocLink:
    """One end of a same-loop, same-process link pair.

    ``_rx`` holds frames the *peer* queued for this end; the owning
    loop drains it via ``_drain_inproc`` and delivers each frame to
    this end's bound core.  Backpressure is enforced at the sender
    against the receiver's undrained backlog, mirroring the TCP send
    queue bound (an empty backlog accepts any single frame).
    """

    #: Transport classification for the obs ``links{kind=...}`` census.
    transport_kind = "inproc"
    #: Dispatch flags for the loop (no socket, no ring).
    _shm = False
    _inproc = True

    __slots__ = (
        "link_id",
        "max_send_bytes",
        "_loop",
        "_core",
        "_peer",
        "_rx",
        "_rx_nbytes",
        "_closed",
        "_peer_closed",
        "_pending",
    )

    def __init__(
        self,
        loop,
        link_id: int,
        max_send_bytes: int = SEND_QUEUE_MAX_BYTES,
    ):
        self.link_id = link_id
        self.max_send_bytes = max_send_bytes
        self._loop = loop
        self._core = None  # owning NodeCore; set by the loop/builder
        self._peer: Optional["InprocLink"] = None
        self._rx: Deque[bytes] = collections.deque()
        self._rx_nbytes = 0
        self._closed = False
        self._peer_closed = False
        self._pending = False  # parked on the loop's ready list

    # -- ChannelEnd interface ---------------------------------------------

    def send(self, payload) -> None:
        """Hand one framed payload to the peer's receive deque.

        No syscall, no copy for ``bytes`` payloads; ``memoryview`` /
        ``bytearray`` payloads are snapshotted (the sender may recycle
        the buffer).  Bound semantics mirror
        :meth:`SelectorLink.send`: an empty peer backlog accepts any
        single payload, a non-empty one refuses overflow with
        :class:`SendQueueFull`.
        """
        if self._closed:
            raise ConnectionError(f"link {self.link_id} is closed")
        peer = self._peer
        if peer is None or peer._closed or self._peer_closed:
            raise ConnectionError(f"link {self.link_id}: peer is closed")
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError("channel payloads must be bytes")
        n = len(payload)
        if peer._rx_nbytes and peer._rx_nbytes + n + _LEN.size > self.max_send_bytes:
            raise SendQueueFull(
                f"link {self.link_id}: peer holds {peer._rx_nbytes} "
                f"undrained bytes, refusing {n} more (bound {self.max_send_bytes})"
            )
        peer._rx.append(payload if isinstance(payload, bytes) else bytes(payload))
        peer._rx_nbytes += n + _LEN.size
        peer._loop._note_inproc(peer)

    def send_capacity(self) -> int:
        """Bytes the peer's undrained backlog can still accept."""
        peer = self._peer
        if peer is None or peer._rx_nbytes == 0:
            return self.max_send_bytes
        return max(0, self.max_send_bytes - peer._rx_nbytes)

    @property
    def send_backlog(self) -> int:
        """Bytes queued toward the peer and not yet drained."""
        peer = self._peer
        return 0 if peer is None else peer._rx_nbytes

    # The loop's send_backlog_bytes gauge sums ``_out_nbytes`` over its
    # links; a property satisfies that through __slots__.
    @property
    def _out_nbytes(self) -> int:
        return self.send_backlog

    def link_metrics(self) -> dict:
        """Point-in-time transport numbers for this link (JSON-able)."""
        return {
            "link_id": self.link_id,
            "kind": "inproc",
            "send_backlog_bytes": self.send_backlog,
            "closed": self._closed,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._loop._forget(self)
        peer = self._peer
        if peer is not None and not peer._closed:
            # EOF propagation: the peer's loop delivers its remaining
            # frames, then a ``None`` payload — same order a TCP FIN
            # after in-flight data would produce.
            peer._peer_closed = True
            peer._loop._note_inproc(peer)

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return (
            f"InprocLink(id={self.link_id}, backlog={self.send_backlog}B"
            f"{', closed' if self._closed else ''})"
        )
