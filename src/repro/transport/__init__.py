"""Transport substrate: channels between processes (threaded + TCP)."""

from .channel import Channel, ChannelClosed, ChannelEnd, Inbox

__all__ = ["Channel", "ChannelClosed", "ChannelEnd", "Inbox"]
