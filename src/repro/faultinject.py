"""Deterministic fault injection for thread-hosted MRNet networks.

The paper defers process-failure recovery to future work (§6); the
reproduction implements it (see :mod:`repro.core.failure`), which
means it must also be able to *cause* failures on demand.  This
module is that harness.  It deliberately reaches through the public
``Network`` object into the runtime's internals — the entire point is
to break the system in ways the API never would:

* **kill** an internal process abruptly (no shutdown broadcast, ends
  closed — peers see raw EOF, exactly like a SIGKILLed
  ``mrnet_commnode``);
* **wedge** an internal process: its loop keeps the TCP connections
  open but processes nothing, the failure mode only heartbeats can
  detect;
* **sever** one link mid-frame: a partial length-prefixed frame is
  written and the socket killed, exercising the receivers' frame
  reassembly against truncation;
* **kill a back-end** (closes its parent link from the leaf side);
* **stall a consumer**: pause a back-end's reader thread so the
  sending comm node's bounded queue backs up (backpressure, the PR 2
  ``send_queue_full`` path).

Every primitive records what it did in :attr:`FaultInjector.log`, and
:class:`FaultSchedule` drives primitives from a *seeded* plan, so a
chaos run is reproducible from ``(topology, seed)`` alone.

Only thread-hosted transports (``local``/``tcp``) are supported for
in-process primitives; ``kill_process(i)`` covers the process
transport by SIGKILLing the i-th spawned ``mrnet_commnode``.
"""

from __future__ import annotations

import random
import struct
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

__all__ = ["FaultInjector", "FaultEvent", "FaultSchedule"]

_LEN = struct.Struct(">I")


class FaultInjector:
    """Break one thread-hosted :class:`~repro.core.network.Network`."""

    def __init__(self, network, clock: Callable[[], float] = time.monotonic):
        self.network = network
        self.clock = clock
        self.log: List[Tuple[str, object]] = []

    # -- targeting ---------------------------------------------------------

    def commnode(self, which: Union[int, str]):
        """A comm node by position (build order) or topology label."""
        nodes = self.network._commnodes
        if isinstance(which, int):
            return nodes[which]
        for node in nodes:
            if node.core.name == which:
                return node
        raise KeyError(f"no comm node {which!r}")

    def commnode_labels(self) -> List[str]:
        return [node.core.name for node in self.network._commnodes]

    # -- process faults ----------------------------------------------------

    def kill_commnode(self, which: Union[int, str]) -> None:
        """Crash an internal node: loop exits, ends close, no goodbye."""
        node = self.commnode(which)
        self.log.append(("kill_commnode", node.core.name))
        node.kill()

    def wedge_commnode(self, which: Union[int, str]) -> None:
        """Freeze an internal node's processing while its links stay up."""
        node = self.commnode(which)
        self.log.append(("wedge_commnode", node.core.name))
        node.core.wedged = True

    def unwedge_commnode(self, which: Union[int, str]) -> None:
        node = self.commnode(which)
        self.log.append(("unwedge_commnode", node.core.name))
        node.core.wedged = False

    def kill_backend(self, rank: int) -> None:
        """Kill a back-end: its parent link dies from the leaf side."""
        slot = self.network._slots[rank]
        self.log.append(("kill_backend", rank))
        if slot.backend is not None:
            slot.backend.shut_down = True
        if slot.parent_end is not None:
            slot.parent_end.close()

    def kill_process(self, index: int) -> None:
        """SIGKILL the index-th spawned process (process transport)."""
        proc = self.network._procs[index]
        self.log.append(("kill_process", index))
        proc.kill()

    # -- link faults -------------------------------------------------------

    def sever_link(
        self, which: Union[int, str], child_index: int = 0, mid_frame: bool = True
    ) -> int:
        """Cut one of a comm node's child links; returns the link id.

        With ``mid_frame=True`` (and a raw socket under the link) a
        truncated frame — a length prefix promising more bytes than
        will ever arrive — is written first, so the receiver's
        reassembly sees EOF inside a frame and must discard the
        partial data rather than deliver garbage.
        """
        core = self.commnode(which).core
        link_ids = list(core.children)
        link_id = link_ids[child_index]
        end = core.children[link_id]
        sock = getattr(end, "_sock", None)
        if mid_frame and sock is not None:
            try:
                sock.send(_LEN.pack(1 << 20) + b"truncated")
            except OSError:
                pass
        elif mid_frame and getattr(end, "_inproc", False):
            # Co-located (in-process) links have no wire to truncate;
            # the equivalent abrupt loss is dropping whatever the peer
            # had queued but not yet consumed, so close() delivers a
            # bare EOF instead of the usual drain-then-EOF goodbye.
            peer = getattr(end, "_peer", None)
            if peer is not None:
                peer._rx.clear()
                peer._rx_nbytes = 0
        self.log.append(("sever_link", (core.name, link_id)))
        end.close()
        return link_id

    # -- consumer faults ---------------------------------------------------

    def stall_backend(self, rank: int) -> None:
        """Pause a back-end's reader thread: frames pile up in the
        socket until the sending node's bounded queue pushes back."""
        slot = self.network._slots[rank]
        end = slot.parent_end
        if not hasattr(end, "pause_reading"):
            raise TypeError(
                f"back-end {rank}'s parent link ({type(end).__name__}) "
                "has no reader thread to stall (tcp transport only)"
            )
        self.log.append(("stall_backend", rank))
        end.pause_reading()

    def resume_backend(self, rank: int) -> None:
        slot = self.network._slots[rank]
        self.log.append(("resume_backend", rank))
        slot.parent_end.resume_reading()

    # -- heartbeat faults --------------------------------------------------

    def drop_heartbeats(self, which: Union[int, str]) -> None:
        """Suppress a node's probes without touching its data path.

        The peer's liveness deadline only fires on *total* silence, so
        dropping probes alone is only fatal on otherwise-idle links —
        exactly the distinction the tests need to exercise.
        """
        core = self.commnode(which).core
        self.log.append(("drop_heartbeats", core.name))
        core.heartbeat_tick = lambda: None  # type: ignore[method-assign]


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: fire *action(*args)* at ``at`` seconds."""

    at: float
    action: str
    args: Tuple = ()


@dataclass
class FaultSchedule:
    """A seeded, time-ordered fault plan driven by the test's loop.

    Usage::

        inj = FaultInjector(net)
        sched = FaultSchedule.random(inj, seed=7, horizon=0.5)
        sched.arm()
        while not sched.done:
            sched.poll()          # fires everything now due
            ... drive the tool ...

    ``poll`` is pull-based on purpose: no timer threads, so a virtual
    clock works and two runs with one seed produce identical traces.
    """

    injector: FaultInjector
    events: List[FaultEvent]
    fired: List[FaultEvent] = field(default_factory=list)
    _t0: Optional[float] = None

    def arm(self) -> None:
        self._t0 = self.injector.clock()

    @property
    def done(self) -> bool:
        return len(self.fired) == len(self.events)

    def poll(self) -> List[FaultEvent]:
        """Fire every event whose time has come; returns those fired."""
        if self._t0 is None:
            raise RuntimeError("FaultSchedule.poll before arm()")
        now = self.injector.clock() - self._t0
        newly = []
        for event in self.events:
            if event in self.fired or event.at > now:
                continue
            getattr(self.injector, event.action)(*event.args)
            self.fired.append(event)
            newly.append(event)
        return newly

    @classmethod
    def random(
        cls,
        injector: FaultInjector,
        seed: int,
        n_faults: int = 1,
        horizon: float = 0.5,
        actions: Sequence[str] = ("kill_commnode",),
    ) -> "FaultSchedule":
        """A reproducible plan: times and targets drawn from *seed*."""
        rng = random.Random(seed)
        labels = injector.commnode_labels()
        if not labels:
            raise ValueError("network has no internal nodes to break")
        events = []
        targets = list(labels)
        for _ in range(n_faults):
            action = rng.choice(list(actions))
            if not targets:
                break
            target = targets.pop(rng.randrange(len(targets)))
            events.append(FaultEvent(rng.uniform(0.0, horizon), action, (target,)))
        events.sort(key=lambda e: e.at)
        return cls(injector, events)
