"""Tests for the Figure 9 load model and the clock simulation."""

import numpy as np
import pytest

from repro.sim.clocks import BLUE_PACIFIC_CLOCKS, ClockSimParams, JitteredLink, SkewedClock
from repro.sim.frontend_load import (
    PARADYN_LOAD,
    frontend_load_fraction,
    load_curve,
    offered_rate,
)
from repro.topology import balanced_tree_for


class TestOfferedRate:
    def test_5dm(self):
        assert offered_rate(64, 32) == 5 * 64 * 32
        assert offered_rate(1, 1) == 5.0


class TestFrontendLoad:
    def test_paper_anchor_64x32(self):
        """§4.2.2: 'only about 60% of the rate' at 64 daemons, 32 metrics."""
        frac = frontend_load_fraction(64, 32)
        assert 0.5 < frac < 0.7

    def test_paper_anchor_256x32(self):
        """§4.2.2: 'less than 5% of the offered load' at 256 × 32."""
        assert frontend_load_fraction(256, 32) < 0.05

    def test_light_load_is_full_fraction(self):
        assert frontend_load_fraction(4, 1) == 1.0
        assert frontend_load_fraction(16, 1) == 1.0

    def test_mrnet_holds_full_load_all_paper_configs(self):
        """Figure 9: every MRNet fan-out processed the entire offered load."""
        for fanout in (4, 8, 16):
            for daemons in (4, 16, 64, 128, 256):
                for metrics in (1, 8, 16, 32):
                    topo = balanced_tree_for(fanout, daemons)
                    assert frontend_load_fraction(daemons, metrics, topo) == 1.0

    def test_fraction_monotone_decreasing_in_daemons(self):
        fracs = [frontend_load_fraction(d, 32) for d in (16, 64, 128, 256, 512)]
        assert all(a >= b for a, b in zip(fracs, fracs[1:]))

    def test_fraction_monotone_decreasing_in_metrics(self):
        fracs = [frontend_load_fraction(128, m) for m in (1, 8, 16, 32)]
        assert all(a >= b for a, b in zip(fracs, fracs[1:]))

    def test_topology_backend_count_checked(self):
        with pytest.raises(ValueError):
            frontend_load_fraction(64, 8, balanced_tree_for(4, 32))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            frontend_load_fraction(0, 1)
        with pytest.raises(ValueError):
            frontend_load_fraction(1, 0)

    def test_load_curve_helper(self):
        curve = load_curve([4, 64, 256], 32)
        assert len(curve) == 3
        assert curve[0] == 1.0 and curve[-1] < 0.05
        tree_curve = load_curve([4, 64, 256], 32, lambda d: balanced_tree_for(8, d))
        assert tree_curve == [1.0, 1.0, 1.0]


class TestClocks:
    def test_skewed_clock_reads(self):
        c = SkewedClock(0.5)
        assert c.read(10.0) == 10.5

    def test_random_clock_distribution(self):
        rng = np.random.default_rng(0)
        offsets = [SkewedClock.random(rng, 1e-3).offset for _ in range(2000)]
        assert abs(np.mean(offsets)) < 1e-4
        assert np.std(offsets) == pytest.approx(1e-3, rel=0.1)

    def test_link_latencies_positive_and_jittered(self):
        rng = np.random.default_rng(1)
        link = JitteredLink(rng, 100e-6, 50e-6, 0.3)
        fwd = [link.forward_delay() for _ in range(500)]
        ret = [link.return_delay() for _ in range(500)]
        assert min(fwd) > 0 and min(ret) > 0
        assert np.std(fwd) > 0

    def test_link_asymmetry(self):
        """Forward/return bases differ by base·asymmetry."""
        rng = np.random.default_rng(2)
        link = JitteredLink(rng, 100e-6, 0.0, 0.4)  # no jitter
        fwd, ret = link.forward_delay(), link.return_delay()
        assert abs(fwd - ret) == pytest.approx(100e-6 * 0.4, rel=1e-9)
        assert fwd + ret == pytest.approx(2 * 100e-6, rel=1e-9)

    def test_default_params_local_less_jittered_than_direct(self):
        p = BLUE_PACIFIC_CLOCKS
        assert p.local_jitter < p.direct_jitter or p.local_base > 0
        assert isinstance(p, ClockSimParams)
