"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import FifoResource, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(3.0, lambda: log.append(3))
        sim.at(1.0, lambda: log.append(1))
        sim.at(2.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2, 3]
        assert sim.now == 3.0

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.at(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.at(2.0, lambda: sim.after(0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [2.5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run()
        assert log == [1, 10]

    def test_cascading_events(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100:
                sim.after(1.0, tick)

        sim.at(0.0, tick)
        sim.run()
        assert count[0] == 100
        assert sim.now == 99.0
        assert sim.events_run == 100

    def test_step(self):
        sim = Simulator()
        sim.at(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_pending(self):
        sim = Simulator()
        assert sim.pending == 0
        sim.at(1.0, lambda: None)
        assert sim.pending == 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=50))
    def test_monotone_time_property(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.at(t, lambda t=t: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(times)


class TestFifoResource:
    def test_sequential_occupancy(self):
        r = FifoResource()
        assert r.occupy(0.0, 2.0) == (0.0, 2.0)
        assert r.occupy(0.0, 3.0) == (2.0, 5.0)  # queued behind
        assert r.occupy(10.0, 1.0) == (10.0, 11.0)  # idle gap

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FifoResource().occupy(0.0, -1.0)

    def test_zero_duration(self):
        r = FifoResource()
        assert r.occupy(1.0, 0.0) == (1.0, 1.0)

    def test_busy_time_and_utilization(self):
        r = FifoResource()
        r.occupy(0.0, 2.0)
        r.occupy(5.0, 3.0)
        assert r.busy_time == 5.0
        assert r.utilization(10.0) == 0.5
        assert r.utilization(0.0) == 0.0
        assert r.utilization(1.0) == 1.0  # clamped

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 10, allow_nan=False)),
            min_size=1,
            max_size=40,
        )
    )
    def test_no_overlap_property(self, jobs):
        """Granted intervals never overlap and respect request times."""
        r = FifoResource()
        granted = [r.occupy(start, dur) for start, dur in jobs]
        for (s, e), (start, dur) in zip(granted, jobs):
            assert s >= start and e == s + dur
        for (s1, e1), (s2, e2) in zip(granted, granted[1:]):
            assert s2 >= e1
