"""Tests for simulated-collective event tracing."""

import json

import pytest

from repro.sim.collectives import CollectiveSim
from repro.sim.trace import MessageEvent, SimTrace
from repro.topology import balanced_tree, flat_topology


class TestMessageEvent:
    def test_latency(self):
        e = MessageEvent("a:0", "b:0", 0.0, 0.001, 0.002, 0.003, 64)
        assert e.latency == pytest.approx(0.003)


class TestTraceRecording:
    def test_broadcast_message_count(self):
        trace = SimTrace()
        CollectiveSim(balanced_tree(2, 2), trace=trace).broadcast()
        # Edges: 2 root->internal + 4 internal->leaf = 6 messages.
        assert len(trace) == 6
        assert trace.summary()["messages"] == 6

    def test_roundtrip_counts_both_directions(self):
        trace = SimTrace()
        CollectiveSim(balanced_tree(2, 2), trace=trace).roundtrip()
        assert len(trace) == 12  # 6 down + 6 up

    def test_flat_frontend_is_busiest_receiver(self):
        trace = SimTrace()
        sim = CollectiveSim(flat_topology(16), trace=trace)
        sim.pipelined_reductions(waves=5)
        name, count = trace.busiest_receiver()
        assert name == sim.spec.root.label
        assert count == 16 * 5

    def test_tree_spreads_receives(self):
        trace = SimTrace()
        sim = CollectiveSim(balanced_tree(4, 2), trace=trace)
        sim.pipelined_reductions(waves=5)
        per_proc = trace.messages_per_process()
        _, fe_received = per_proc[sim.spec.root.label]
        # The front-end receives only its fan-out per wave, not 16.
        assert fe_received == 4 * 5

    def test_timestamps_ordered(self):
        trace = SimTrace()
        CollectiveSim(balanced_tree(2, 3), trace=trace).roundtrip()
        for e in trace.events:
            assert e.send_start <= e.departure <= e.arrival <= e.delivered

    def test_no_trace_by_default(self):
        sim = CollectiveSim(balanced_tree(2, 2))
        sim.broadcast()
        assert sim.trace is None


class TestChromeExport:
    def test_valid_json_with_tracks(self):
        trace = SimTrace()
        CollectiveSim(balanced_tree(2, 2), trace=trace).roundtrip()
        doc = json.loads(trace.to_chrome_trace())
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "s", "f"} <= phases
        # One metadata track per process (7 processes in a 2x2 tree).
        assert sum(1 for e in events if e["ph"] == "M") == 7
        # Flow arrows pair up.
        assert sum(1 for e in events if e["ph"] == "s") == len(trace)
        assert sum(1 for e in events if e["ph"] == "f") == len(trace)

    def test_empty_trace_exports(self):
        doc = json.loads(SimTrace().to_chrome_trace())
        assert doc["traceEvents"] == []
        assert SimTrace().busiest_receiver() == ("", 0)
        assert SimTrace().summary()["makespan"] == 0.0
