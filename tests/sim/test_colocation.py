"""Tests for the co-location model and CPU-utilization reporting."""

import pytest

from repro.sim.collectives import CollectiveSim
from repro.sim.colocation import ColocationParams, simulate_colocation
from repro.topology import balanced_tree, balanced_tree_for


def dedicated_tree(fanout, n):
    """One process per host: the paper's recommended placement."""
    return balanced_tree_for(fanout, n)


def colocated_tree(fanout, n, n_hosts):
    """Processes packed over n_hosts: internal + back-ends share."""
    hosts = [f"app{i:03d}" for i in range(n_hosts)]
    return balanced_tree_for(fanout, n, hosts=hosts)


class TestColocation:
    def test_dedicated_placement_is_balanced_and_unslowed(self):
        spec = dedicated_tree(4, 64)
        res = simulate_colocation(spec, messages_per_second=160)
        assert res.slowdown == pytest.approx(1.0)
        assert res.imbalance == pytest.approx(1.0)
        assert res.iteration_time == pytest.approx(1.0)

    def test_colocated_placement_slows_the_application(self):
        spec = colocated_tree(4, 64, 64)
        res = simulate_colocation(spec, messages_per_second=160)
        assert res.slowdown > 1.05
        # Only hosts carrying internal processes are slowed → imbalance.
        assert res.imbalance > 1.0

    def test_slowdown_grows_with_tool_load(self):
        spec = colocated_tree(4, 64, 64)
        slowdowns = [
            simulate_colocation(spec, messages_per_second=rate).slowdown
            for rate in (0, 40, 160, 640)
        ]
        assert slowdowns[0] == pytest.approx(1.0)
        assert slowdowns == sorted(slowdowns)

    def test_imbalance_is_the_barrier_effect(self):
        """mean time is barely affected; the max gates the iteration
        ('a parallel program's speed is often limited by its slowest
        process')."""
        spec = colocated_tree(8, 64, 64)
        res = simulate_colocation(spec, messages_per_second=160)
        assert res.iteration_time > res.mean_process_time
        # A minority of hosts carry internal processes.
        assert len(res.tool_utilization) < 64

    def test_utilization_capped(self):
        spec = colocated_tree(4, 16, 4)
        res = simulate_colocation(
            spec,
            messages_per_second=1e9,
            params=ColocationParams(per_message_cost=1.0),
        )
        assert all(u <= len(spec) for u in res.tool_utilization.values())
        assert res.iteration_time < float("inf")

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            simulate_colocation(dedicated_tree(2, 4), -1.0)


class TestCpuUtilization:
    def test_reported_after_experiment(self):
        sim = CollectiveSim(balanced_tree(4, 2))
        sim.pipelined_reductions(waves=40)
        utils = sim.cpu_utilizations()
        # Front-end + 4 internal processes, none of the 16 leaves.
        assert len(utils) == 5
        assert all(0.0 <= u <= 1.0 for u in utils.values())
        # The front-end (op-cost bound) is the busiest process.
        fe_label = f"{sim.spec.root.host}:{sim.spec.root.index}"
        assert utils[fe_label] == max(utils.values())

    def test_flat_frontend_utilization_grows_with_backends(self):
        from repro.topology import flat_topology

        def fe_util(n):
            sim = CollectiveSim(flat_topology(n))
            sim.pipelined_reductions(waves=30)
            return sim.cpu_utilizations()[
                f"{sim.spec.root.host}:{sim.spec.root.index}"
            ]

        assert fe_util(400) > fe_util(16) * 0.9
        assert fe_util(400) > 0.9  # saturated: the Figure 7c collapse
