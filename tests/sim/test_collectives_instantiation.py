"""Tests for the DES collective and instantiation simulators."""

import pytest

from repro.sim.cluster import BLUE_PACIFIC, ClusterParams
from repro.sim.collectives import CollectiveSim
from repro.sim.instantiation import simulate_instantiation
from repro.sim.logp import LogGPParams
from repro.topology import balanced_tree, balanced_tree_for, flat_topology


class TestCollectiveBroadcast:
    def test_reaches_all_leaves(self):
        res = CollectiveSim(balanced_tree(4, 2)).broadcast()
        assert res.latency > 0
        assert res.events > 0

    def test_flat_broadcast_scales_linearly(self):
        l100 = CollectiveSim(flat_topology(100)).broadcast().latency
        l200 = CollectiveSim(flat_topology(200)).broadcast().latency
        # Dominated by 100 vs 200 serialized gaps.
        assert l200 / l100 == pytest.approx(2.0, rel=0.15)

    def test_tree_broadcast_beats_flat_at_scale(self):
        n = 256
        flat = CollectiveSim(flat_topology(n)).broadcast().latency
        tree = CollectiveSim(balanced_tree(4, 4)).broadcast().latency
        assert tree < flat / 5


class TestRoundtrip:
    def test_fig7b_shape(self):
        """Flat grows ~linearly; trees stay nearly level (Figure 7b)."""
        ns = [50, 200, 600]
        flat = [CollectiveSim(flat_topology(n)).roundtrip().latency for n in ns]
        tree8 = [
            CollectiveSim(balanced_tree_for(8, n)).roundtrip().latency for n in ns
        ]
        # Flat roughly linear in n.
        assert flat[2] / flat[0] == pytest.approx(ns[2] / ns[0], rel=0.3)
        # Tree grows far slower than flat.
        assert tree8[2] < flat[2] / 10
        assert tree8[2] / tree8[0] < 3

    def test_flat_600_near_paper_anchor(self):
        """Paper Figure 7b: flat round-trip ≈ 1.2–1.4 s at 600 back-ends."""
        lat = CollectiveSim(flat_topology(600)).roundtrip().latency
        assert 0.9 < lat < 1.7

    def test_tree_roundtrip_modest(self):
        lat = CollectiveSim(balanced_tree_for(8, 512)).roundtrip().latency
        assert lat < 0.25  # paper: tree curves stay ≈ 0.1–0.2 s


class TestPipelinedThroughput:
    def test_peak_near_80_ops(self):
        """Paper Figure 7c: ≈ 80 ops/s peak (front-end turn-around bound)."""
        thr = CollectiveSim(flat_topology(4)).pipelined_reductions(waves=80).throughput
        assert 55 < thr < 90

    def test_fig7c_shape(self):
        """Flat collapses with back-ends; trees hold throughput."""
        flat600 = CollectiveSim(flat_topology(600)).pipelined_reductions(
            waves=40
        ).throughput
        tree600 = CollectiveSim(balanced_tree_for(8, 600)).pipelined_reductions(
            waves=40
        ).throughput
        assert flat600 < 12
        assert tree600 > 55

    def test_all_waves_complete(self):
        res = CollectiveSim(balanced_tree(2, 3)).pipelined_reductions(waves=25)
        assert len(res.completions) == 25
        assert res.completions == sorted(res.completions)

    def test_throughput_zero_when_empty(self):
        from repro.sim.collectives import CollectiveResult

        assert CollectiveResult(latency=0.0).throughput == 0.0


class TestInstantiation:
    def test_flat_is_serial_rsh(self):
        n = 100
        res = simulate_instantiation(flat_topology(n))
        assert res.latency == pytest.approx(
            n * BLUE_PACIFIC.rsh_cost, rel=0.05
        )
        assert res.launches_on_critical_path == n

    def test_fig7a_shape(self):
        """Flat ≈ 850 s at 600; trees a few tens of seconds (Figure 7a)."""
        flat = simulate_instantiation(flat_topology(600)).latency
        t4 = simulate_instantiation(balanced_tree_for(4, 600)).latency
        t8 = simulate_instantiation(balanced_tree_for(8, 600)).latency
        assert 750 < flat < 1000
        assert t4 < 60 and t8 < 60
        assert t4 < flat / 15 and t8 < flat / 15

    def test_tree_critical_path(self):
        # Fully-populated k-ary: critical path = depth * fanout launches.
        res = simulate_instantiation(balanced_tree(4, 3))
        assert res.launches_on_critical_path == 12
        assert res.processes == 1 + 4 + 16 + 64

    def test_custom_params(self):
        params = ClusterParams(rsh_cost=0.1, boot_delay=0.0)
        res = simulate_instantiation(flat_topology(10), params)
        assert res.latency == pytest.approx(1.0, rel=0.1)

    def test_tree_growth_sublinear(self):
        lat_150 = simulate_instantiation(balanced_tree_for(4, 150)).latency
        lat_600 = simulate_instantiation(balanced_tree_for(4, 600)).latency
        assert lat_600 / lat_150 < 2.0  # 4x back-ends, < 2x latency


class TestDeterminism:
    def test_collectives_reproducible(self):
        a = CollectiveSim(balanced_tree(4, 2)).roundtrip().latency
        b = CollectiveSim(balanced_tree(4, 2)).roundtrip().latency
        assert a == b

    def test_instantiation_reproducible(self):
        a = simulate_instantiation(balanced_tree_for(8, 100)).latency
        b = simulate_instantiation(balanced_tree_for(8, 100)).latency
        assert a == b
