"""Tests for the LogP/LogGP model and Figure 4 analysis."""

import pytest

from repro.sim.logp import (
    LogGPParams,
    balanced_kary_broadcast_closed_form,
    broadcast_latency,
    injection_gap,
    message_cost,
    pipelined_gap,
    pipelined_throughput,
    reduction_latency,
    roundtrip_latency,
)
from repro.topology import balanced_tree, flat_topology, unbalanced_fig4

P = LogGPParams(L=50e-6, o=25e-6, g=1e-3, G=10e-9)


class TestMessageCost:
    def test_zero_bytes(self):
        assert message_cost(P, 0) == pytest.approx(2 * P.o + P.L)

    def test_bytes_add_per_byte_gap(self):
        assert message_cost(P, 1001) - message_cost(P, 1) == pytest.approx(1000 * P.G)

    def test_params_with(self):
        assert P.with_(g=5e-3).g == 5e-3
        assert P.g == 1e-3  # original untouched


class TestBroadcast:
    def test_matches_paper_closed_form(self):
        """Recursive model == d·(k·g + 2o + L) on fully-populated trees."""
        for fanout, depth in [(2, 1), (2, 4), (4, 2), (8, 2), (4, 3)]:
            spec = balanced_tree(fanout, depth)
            assert broadcast_latency(spec, P) == pytest.approx(
                balanced_kary_broadcast_closed_form(fanout, depth, P)
            )

    def test_fig4a_is_8g_4o_2L(self):
        """The paper's Figure 4a arithmetic: 8g + 4o + 2L."""
        spec = balanced_tree(4, 2)  # 16 back-ends
        expected = 8 * P.g + 4 * P.o + 2 * P.L
        assert broadcast_latency(spec, P) == pytest.approx(expected)

    def test_flat_serializes(self):
        lat = broadcast_latency(flat_topology(100), P)
        assert lat == pytest.approx(100 * P.g + 2 * P.o + P.L)

    def test_monotone_in_backends(self):
        lats = [broadcast_latency(flat_topology(n), P) for n in (10, 50, 200)]
        assert lats == sorted(lats)


class TestFigure4Claims:
    def test_unbalanced_may_win_single_op_latency(self):
        """With gap-dominated costs the Figure 4b tree broadcasts faster."""
        gap_heavy = LogGPParams(L=1e-6, o=1e-6, g=1e-3, G=0.0)
        bal = balanced_tree(4, 2)
        unbal = unbalanced_fig4()
        assert bal.num_backends == unbal.num_backends == 16
        assert broadcast_latency(unbal, gap_heavy) < broadcast_latency(
            bal, gap_heavy
        )

    def test_injection_gap_4g_vs_6g(self):
        """'new broadcast each 4g' vs 'at least 6g' (paper §2.6)."""
        assert injection_gap(balanced_tree(4, 2), P) == pytest.approx(4 * P.g)
        assert injection_gap(unbalanced_fig4(), P) == pytest.approx(6 * P.g)

    def test_balanced_has_better_pipelined_throughput(self):
        bal = balanced_tree(4, 2)
        unbal = unbalanced_fig4()
        assert pipelined_throughput(bal, P) > pipelined_throughput(unbal, P)

    def test_pipelined_gap_busiest_process(self):
        # Interior node of the 4-ary tree: 4 children + 1 parent = 5 msgs.
        assert pipelined_gap(balanced_tree(4, 2), P) == pytest.approx(5 * P.g)
        # Flat: the root's fan-out dominates.
        assert pipelined_gap(flat_topology(64), P) == pytest.approx(64 * P.g)


class TestReduction:
    def test_flat_reduction_serializes_at_root(self):
        lat = reduction_latency(flat_topology(100), P)
        # 100 arrivals consumed at g intervals after the common arrival.
        assert lat >= 100 * P.g

    def test_tree_reduction_faster_than_flat_at_scale(self):
        n = 256
        assert reduction_latency(balanced_tree(4, 4), P) < reduction_latency(
            flat_topology(n), P
        )

    def test_leaf_only_tree(self):
        # Depth-1 tree == flat.
        assert reduction_latency(balanced_tree(4, 1), P) == pytest.approx(
            reduction_latency(flat_topology(4), P)
        )

    def test_roundtrip_is_sum(self):
        spec = balanced_tree(2, 3)
        assert roundtrip_latency(spec, P) == pytest.approx(
            broadcast_latency(spec, P) + reduction_latency(spec, P)
        )
