"""Coalescing × elasticity: epochs must re-key or invalidate results.

The satellite bar from ISSUE 9: cached and in-flight coalesced
results must stay correct when a back-end joins or leaves mid-wave.
The mechanism under test: the stream's membership epoch is part of
every cache key, the root stream-manager's ``on_membership_change``
hook updates the gateway's epoch view, and a wave that completes
under a different epoch than it was issued under is delivered to its
waiters but never cached.
"""

import time

import pytest

from repro.core import Network
from repro.filters import TFILTER_SUM
from repro.gateway import BackendResponder, Gateway, Query

from .conftest import RECV_TIMEOUT, wait_until


def sum_query(value):
    return Query("%d", (value,), transform=TFILTER_SUM)


def wait_membership(gw, net, pred):
    """Pump (via paused windows) until a recovery event satisfies *pred*."""

    def check():
        with gw.paused():
            return any(pred(ev) for ev in net.recovery_events())

    assert wait_until(check), "membership change never reached the root"


class TestJoinRekeysCache:
    def test_cached_result_not_served_across_join(self, served_net):
        """A sum cached over N ranks must not satisfy a query over N+1."""
        net, responder = served_net
        n = len(net.backends)
        gw = Gateway(net, cache_ttl=60.0)  # cache would serve stale forever
        try:
            session = gw.session()
            r1 = session.submit(sum_query(5)).result(timeout=RECV_TIMEOUT)
            assert r1 == (5 * n,)
            with gw.paused():
                joiner = net.attach_backend()
                responder.add(joiner)
            wait_membership(gw, net, lambda ev: joiner.rank in ev.gained)
            # First post-join wave is the GRACE wave: the sync filters
            # may release it without the joiner's first contribution,
            # so its value is either sum — but it is never cached.
            grace = session.submit(sum_query(5)).result(timeout=RECV_TIMEOUT)
            assert grace in ((5 * n,), (5 * (n + 1),))
            # From the second post-join wave the joiner is required.
            r2 = session.submit(sum_query(5)).result(timeout=RECV_TIMEOUT)
            assert r2 == (5 * (n + 1),)
            stats = gw.stats()
            assert stats["cache_hits"] == 0, "stale epoch served from cache"
            assert stats["waves"] == 3
            assert stats["invalidated"] >= 1
            # The settled post-join result IS cacheable.
            hit = session.submit(sum_query(5)).result(timeout=RECV_TIMEOUT)
            assert hit == r2
            assert gw.stats()["cache_hits"] == 1
            assert gw.stats()["waves"] == 3
        finally:
            gw.close()

    def test_leave_rekeys_cache_too(self, served_net):
        net, responder = served_net
        n = len(net.backends)
        gw = Gateway(net, cache_ttl=60.0)
        try:
            session = gw.session()
            # Warm-up wave first: RanksChanged fires per OPEN stream,
            # so the stream must exist before the join for the root to
            # report it.
            r0 = session.submit(sum_query(3)).result(timeout=RECV_TIMEOUT)
            assert r0 == (3 * n,)
            with gw.paused():
                joiner = net.attach_backend()
                responder.add(joiner)
            wait_membership(gw, net, lambda ev: joiner.rank in ev.gained)
            session.submit(sum_query(3)).result(timeout=RECV_TIMEOUT)  # grace
            r1 = session.submit(sum_query(3)).result(timeout=RECV_TIMEOUT)
            assert r1 == (3 * (n + 1),)
            responder.remove(joiner)
            with gw.paused():
                joiner.leave()
            wait_membership(gw, net, lambda ev: joiner.rank in ev.lost)
            # First post-leave wave is again a grace wave — value
            # indeterminate while queued contributions drain, and
            # never cached.
            session.submit(sum_query(3)).result(timeout=RECV_TIMEOUT)
            r2 = session.submit(sum_query(3)).result(timeout=RECV_TIMEOUT)
            assert r2 == (3 * n,)
            assert gw.stats()["cache_hits"] == 0
        finally:
            gw.close()


class TestEpochChangeMidWave:
    def test_join_mid_wave_result_delivered_not_cached(self, served_net):
        """A wave straddling a join completes over the OLD membership
        (PR 8's joining-grace semantics), is delivered to every
        coalesced waiter, but must NOT enter the result cache — the
        next identical query pays a fresh wave over the new ranks."""
        net, responder = served_net
        n = len(net.backends)
        # Drive rank 0 by hand so the wave can be held open: the
        # responder answers every rank except 0.
        held = net.backends[0]
        others = {r: be for r, be in net.backends.items() if r != 0}
        responder.stop()
        slow = BackendResponder(others)
        gw = Gateway(net, cache_ttl=60.0)
        try:
            sessions = [gw.session(f"s{i}") for i in range(5)]
            with gw.paused():
                tickets = [s.submit(sum_query(4)) for s in sessions]
            # Wave is now in flight, waiting on rank 0's contribution.
            assert wait_until(lambda: gw.stats()["inflight"] == 1)
            with gw.paused():
                joiner = net.attach_backend()
                slow.add(joiner)
            wait_membership(gw, net, lambda ev: joiner.rank in ev.gained)
            assert not tickets[0].done(), "wave completed while held open"
            # Release rank 0: the in-flight wave completes over the
            # pre-join membership.
            packet, stream = held.recv(timeout=RECV_TIMEOUT)
            stream.send(packet.fmt.canonical, *packet.unpack())
            for ticket in tickets:
                assert ticket.result(timeout=RECV_TIMEOUT) == (4 * n,)
            stats = gw.stats()
            assert stats["waves"] == 1
            assert stats["coalesced"] == len(sessions) - 1
            assert stats["invalidated"] >= 1
            # The epoch-straddling result was NOT cached: the same
            # query now costs a fresh wave over n+1 ranks.  Rank 0 is
            # still hand-driven.
            follow_up = sessions[0].submit(sum_query(4))
            packet, stream = held.recv(timeout=RECV_TIMEOUT)
            stream.send(packet.fmt.canonical, *packet.unpack())
            assert follow_up.result(timeout=RECV_TIMEOUT) == (4 * (n + 1),)
            assert gw.stats()["cache_hits"] == 0
            assert gw.stats()["waves"] == 2
        finally:
            gw.close()
            slow.stop()

    def test_leave_settles_to_shrunk_membership(self, served_net):
        """Waves issued across a leave boundary are grace waves (never
        cached, value indeterminate while queued contributions drain);
        the stream settles to the shrunk membership within one wave."""
        net, responder = served_net
        n = len(net.backends)
        gw = Gateway(net, cache_ttl=0.0)
        try:
            session = gw.session()
            # Warm-up wave so the stream (and its membership events)
            # exist before the join.
            r0 = session.submit(sum_query(2)).result(timeout=RECV_TIMEOUT)
            assert r0 == (2 * n,)
            with gw.paused():
                joiner = net.attach_backend()
                responder.add(joiner)
            wait_membership(gw, net, lambda ev: joiner.rank in ev.gained)
            session.submit(sum_query(2)).result(timeout=RECV_TIMEOUT)  # grace
            r1 = session.submit(sum_query(2)).result(timeout=RECV_TIMEOUT)
            assert r1 == (2 * (n + 1),)
            responder.remove(joiner)
            with gw.paused():
                joiner.leave()
            wait_membership(gw, net, lambda ev: joiner.rank in ev.lost)
            session.submit(sum_query(2)).result(timeout=RECV_TIMEOUT)  # grace
            r2 = session.submit(sum_query(2)).result(timeout=RECV_TIMEOUT)
            assert r2 == (2 * n,)
        finally:
            gw.close()


class TestEpochBookkeeping:
    def test_gateway_tracks_stream_epoch(self, served_net):
        net, responder = served_net
        gw = Gateway(net, cache_ttl=0.0)
        try:
            session = gw.session()
            ticket = session.submit(sum_query(1))
            ticket.result(timeout=RECV_TIMEOUT)
            assert ticket.epoch == 0
            with gw.paused():
                joiner = net.attach_backend()
                responder.add(joiner)
            wait_membership(gw, net, lambda ev: joiner.rank in ev.gained)
            later = session.submit(sum_query(1))
            later.result(timeout=RECV_TIMEOUT)
            assert later.epoch is not None and later.epoch > ticket.epoch
        finally:
            gw.close()

    def test_invalidation_counter_in_network_stats(self, served_net):
        net, responder = served_net
        gw = Gateway(net, cache_ttl=60.0)
        try:
            session = gw.session()
            session.submit(sum_query(9)).result(timeout=RECV_TIMEOUT)
            with gw.paused():
                joiner = net.attach_backend()
                responder.add(joiner)
            wait_membership(gw, net, lambda ev: joiner.rank in ev.gained)
            snapshot = net.stats()["0:front-end"]
            assert snapshot["gateway_entries_invalidated"] >= 1
        finally:
            gw.close()
