"""Shared fixtures for the serving-gateway suite.

One small colocated tree per test, with echo back-end daemons and a
gateway wired up — mirrors the production shape (driver thread owns
the network) at test scale.
"""

import time

import pytest

from repro.core import Network
from repro.gateway import BackendResponder, Gateway
from repro.topology import balanced_tree

RECV_TIMEOUT = 10.0


@pytest.fixture
def served_net():
    """(net, responder) over a 2x2 colocated tree (4 back-ends)."""
    net = Network(balanced_tree(2, 2), colocate=True)
    responder = BackendResponder(net.backends)
    try:
        yield net, responder
    finally:
        responder.stop()
        net.shutdown()


@pytest.fixture
def gateway(served_net):
    """A default-config Gateway over ``served_net`` (closed after)."""
    net, _ = served_net
    gw = Gateway(net, cache_ttl=0.5)
    try:
        yield gw
    finally:
        gw.close()


def wait_until(pred, timeout=RECV_TIMEOUT, interval=0.005):
    """Poll *pred* until truthy; returns its last value (falsy = timeout)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = pred()
        if value:
            return value
        time.sleep(interval)
    return pred()
