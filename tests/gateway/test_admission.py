"""Unit tests for admission control (token bucket + queue bound).

All deterministic: the clock is injected, no network involved.
"""

import pytest

from repro.gateway import AdmissionController, Overloaded, TokenBucket


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True] * 3 + [False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1, clock=clock)
        assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.05)  # half a token
        assert not bucket.try_take()
        clock.advance(0.05)  # full token
        assert bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_take() for _ in range(3)] == [True, True, False]

    def test_retry_after_estimates_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.try_take()
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.advance(0.125)
        assert bucket.retry_after() == pytest.approx(0.125)

    def test_unlimited_when_rate_none(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_take() for _ in range(1000))
        assert bucket.retry_after() == 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)


class TestAdmissionController:
    def test_queue_bound_sheds_typed(self):
        ctl = AdmissionController(max_pending=2)
        ctl.admit(0)
        ctl.admit(1)
        with pytest.raises(Overloaded) as err:
            ctl.admit(2)
        assert err.value.reason == "queue"
        assert err.value.retry_after >= 0.0

    def test_rate_shed_carries_retry_hint(self):
        clock = FakeClock()
        ctl = AdmissionController(
            max_pending=100, bucket=TokenBucket(2.0, burst=1, clock=clock)
        )
        ctl.admit(0)
        with pytest.raises(Overloaded) as err:
            ctl.admit(0)
        assert err.value.reason == "rate"
        assert err.value.retry_after == pytest.approx(0.5)

    def test_queue_bound_checked_before_bucket(self):
        clock = FakeClock()
        bucket = TokenBucket(1.0, burst=1, clock=clock)
        ctl = AdmissionController(max_pending=1, bucket=bucket)
        with pytest.raises(Overloaded) as err:
            ctl.admit(1)
        assert err.value.reason == "queue"
        # The full queue did not burn a token.
        assert bucket.try_take()

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)

    def test_overloaded_message_names_reason(self):
        exc = Overloaded("backpressure", retry_after=0.1)
        assert "backpressure" in str(exc)
        assert exc.retry_after == pytest.approx(0.1)
