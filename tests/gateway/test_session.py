"""Live gateway tests: sessions, fairness, coalescing, shedding, pollers.

Each test runs against a real colocated tree with echo back-end
daemons (see conftest).  Sum filters make results self-checking: an
echo of value *v* summed over N back-ends must equal ``N * v``.
"""

import asyncio
import threading

import pytest

from repro.filters import TFILTER_SUM
from repro.gateway import Gateway, GatewayError, Overloaded, Query

from .conftest import RECV_TIMEOUT, wait_until


def sum_query(value, **kwargs):
    return Query("%d", (value,), transform=TFILTER_SUM, **kwargs)


class TestSubmitPollRecv:
    def test_submit_result_roundtrip(self, served_net, gateway):
        net, _ = served_net
        session = gateway.session("tool")
        ticket = session.submit(sum_query(3))
        assert ticket.result(timeout=RECV_TIMEOUT) == (3 * len(net.backends),)
        assert ticket.done()
        assert ticket.exception() is None

    def test_poll_is_nonblocking(self, served_net, gateway):
        net, _ = served_net
        session = gateway.session()
        assert session.poll() is None
        ticket = session.submit(sum_query(1))
        done = wait_until(session.poll)
        assert done is ticket
        assert done.result(0) == (len(net.backends),)

    def test_recv_blocks_until_completion(self, served_net, gateway):
        net, _ = served_net
        session = gateway.session()
        session.submit(sum_query(2))
        ticket = session.recv(timeout=RECV_TIMEOUT)
        assert ticket.result(0) == (2 * len(net.backends),)

    def test_recv_with_nothing_outstanding_times_out(self, gateway):
        # Legitimate for poller subscribers: recv just waits for the
        # next completion, whatever its source.
        with pytest.raises(TimeoutError):
            gateway.session().recv(timeout=0.1)

    def test_closed_session_rejects_submit(self, gateway):
        session = gateway.session()
        session.close()
        with pytest.raises(GatewayError, match="closed"):
            session.submit(sum_query(1))

    def test_many_sessions_independent_results(self, served_net, gateway):
        net, _ = served_net
        n = len(net.backends)
        sessions = [gateway.session(f"s{i}") for i in range(20)]
        tickets = [s.submit(sum_query(i + 1)) for i, s in enumerate(sessions)]
        for i, ticket in enumerate(tickets):
            assert ticket.result(timeout=RECV_TIMEOUT) == ((i + 1) * n,)


class TestAsyncAPI:
    def test_await_ticket(self, served_net, gateway):
        net, _ = served_net

        async def go():
            ticket = gateway.session().submit(sum_query(4))
            return await asyncio.wait_for(ticket.wait(), RECV_TIMEOUT)

        assert asyncio.run(go()) == (4 * len(net.backends),)

    def test_await_already_completed_ticket(self, served_net, gateway):
        net, _ = served_net
        ticket = gateway.session().submit(sum_query(5))
        expect = ticket.result(timeout=RECV_TIMEOUT)

        async def go():
            return await ticket.wait()

        assert asyncio.run(go()) == expect

    def test_recv_async(self, served_net, gateway):
        net, _ = served_net

        async def go():
            session = gateway.session()
            session.submit(sum_query(6))
            ticket = await asyncio.wait_for(session.recv_async(), RECV_TIMEOUT)
            return ticket.result(0)

        assert asyncio.run(go()) == (6 * len(net.backends),)


class TestCoalescing:
    def test_identical_queries_cost_one_wave(self, served_net, gateway):
        net, _ = served_net
        n = len(net.backends)
        sessions = [gateway.session(f"dash{i}") for i in range(30)]
        with gateway.paused():  # pre-queue so every submit pre-dates the wave
            tickets = [s.submit(sum_query(7)) for s in sessions]
        for ticket in tickets:
            assert ticket.result(timeout=RECV_TIMEOUT) == (7 * n,)
        stats = gateway.stats()
        assert stats["waves"] == 1
        assert stats["coalesced"] == len(sessions) - 1
        assert sum(1 for t in tickets if t.coalesced) == len(sessions) - 1

    def test_cache_hit_within_ttl_issues_no_wave(self, served_net, gateway):
        net, _ = served_net
        session = gateway.session()
        first = session.submit(sum_query(8)).result(timeout=RECV_TIMEOUT)
        again = session.submit(sum_query(8))
        assert again.result(timeout=RECV_TIMEOUT) == first
        assert again.coalesced
        stats = gateway.stats()
        assert stats["waves"] == 1 and stats["cache_hits"] == 1

    def test_distinct_payloads_do_not_coalesce(self, served_net, gateway):
        net, _ = served_net
        session = gateway.session()
        t1 = session.submit(sum_query(1))
        t2 = session.submit(sum_query(2))
        assert t1.result(timeout=RECV_TIMEOUT) == (len(net.backends),)
        assert t2.result(timeout=RECV_TIMEOUT) == (2 * len(net.backends),)
        assert gateway.stats()["waves"] == 2


class TestFairness:
    def test_round_robin_interleaves_sessions(self, served_net):
        """A firehose session cannot starve a trickle session.

        With one wave in flight at a time, round-robin must schedule
        the trickle session's single query ahead of the firehose's
        backlog — it completes before the firehose's LAST query even
        though it was submitted after all of them.
        """
        net, _ = served_net
        gw = Gateway(net, cache_ttl=0.0, max_inflight=1)
        try:
            firehose = gw.session("firehose")
            trickle = gw.session("trickle")
            with gw.paused():
                flood = [firehose.submit(sum_query(100 + i)) for i in range(8)]
                single = trickle.submit(sum_query(999))
            single.result(timeout=RECV_TIMEOUT)
            assert not flood[-1].done(), (
                "trickle session waited behind the whole firehose backlog"
            )
            for ticket in flood:
                ticket.result(timeout=RECV_TIMEOUT)
        finally:
            gw.close()


class TestShedding:
    def test_rate_limit_sheds_typed(self, served_net):
        net, _ = served_net
        gw = Gateway(net, rate=1.0, burst=2, cache_ttl=0.0)
        try:
            session = gw.session()
            admitted, shed = [], []
            with gw.paused():
                for i in range(10):
                    try:
                        admitted.append(session.submit(sum_query(i + 1)))
                    except Overloaded as exc:
                        shed.append(exc)
            assert len(admitted) == 2  # the burst
            assert len(shed) == 8
            assert all(e.reason == "rate" for e in shed)
            assert all(e.retry_after > 0 for e in shed)
            assert gw.stats()["shed_rate"] == 8
            for ticket in admitted:
                ticket.result(timeout=RECV_TIMEOUT)
        finally:
            gw.close()

    def test_queue_bound_sheds_typed(self, served_net):
        net, _ = served_net
        gw = Gateway(net, max_pending=3, cache_ttl=0.0)
        try:
            session = gw.session()
            with gw.paused():  # driver parked: leaders pile up unissued
                for i in range(3):
                    session.submit(sum_query(i + 1))
                with pytest.raises(Overloaded) as err:
                    session.submit(sum_query(99))
            assert err.value.reason == "queue"
            assert gw.stats()["shed_queue"] == 1
            while session.outstanding:
                session.recv(timeout=RECV_TIMEOUT)
        finally:
            gw.close()

    def test_shed_does_not_leak_outstanding(self, served_net):
        net, _ = served_net
        gw = Gateway(net, max_pending=1, cache_ttl=0.0)
        try:
            session = gw.session()
            with gw.paused():
                session.submit(sum_query(1))
                with pytest.raises(Overloaded):
                    session.submit(sum_query(2))
            session.recv(timeout=RECV_TIMEOUT)
            assert session.outstanding == 0
        finally:
            gw.close()


class TestPeriodicPoller:
    def test_subscribers_share_one_wave_per_period(self, served_net, gateway):
        net, _ = served_net
        n = len(net.backends)
        poller = gateway.periodic(sum_query(2), period=0.05)
        subscribers = [gateway.session(f"sub{i}") for i in range(3)]
        for s in subscribers:
            poller.subscribe(s)
        try:
            tickets = [s.recv(timeout=RECV_TIMEOUT) for s in subscribers]
        finally:
            poller.stop()
        assert all(
            t.result(0) == (2 * n,) for t in tickets
        )
        stats = gateway.stats()
        assert stats["poller_ticks"] >= 1
        # Per period: 1 leader + 2 coalesced followers (cache hits can
        # substitute when a tick lands inside the TTL window).
        assert stats["coalesced"] + stats["cache_hits"] >= 2

    def test_poller_keeps_firing_until_stopped(self, served_net, gateway):
        poller = gateway.periodic(sum_query(3), period=0.03)
        session = gateway.session()
        poller.subscribe(session)
        first = session.recv(timeout=RECV_TIMEOUT)
        second = session.recv(timeout=RECV_TIMEOUT)
        poller.stop()
        assert first.result(0) == second.result(0)
        ticks_at_stop = gateway.stats()["poller_ticks"]
        assert ticks_at_stop >= 2
        poller.unsubscribe(session)

    def test_unsubscribed_poller_fires_nothing(self, gateway):
        import time

        poller = gateway.periodic(sum_query(1), period=0.01)
        time.sleep(0.1)  # let a few ticks pass with no subscribers
        poller.stop()
        assert gateway.stats()["poller_ticks"] == 0


class TestObservability:
    def test_gateway_metrics_in_network_stats(self, served_net, gateway):
        net, _ = served_net
        session = gateway.session()
        session.submit(sum_query(1)).result(timeout=RECV_TIMEOUT)
        snapshot = net.stats()["0:front-end"]
        assert snapshot["gateway_sessions"] == 1
        assert snapshot["gateway_queries"] == 1
        assert snapshot["gateway_waves"] == 1
        assert snapshot['queries_shed{reason="rate"}'] == 0

    def test_service_latency_histogram_observes(self, served_net, gateway):
        gateway.session().submit(sum_query(1)).result(timeout=RECV_TIMEOUT)
        hist = gateway._h_service
        assert hist.count == 1
        assert hist.sum > 0
