"""Unit tests for query keys and the coalescing cache (no network)."""

import pytest

from repro.filters import TFILTER_MAX, TFILTER_SUM
from repro.gateway import CoalescingCache, Query


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestQueryKeys:
    def test_equal_payloads_share_digest(self):
        a = Query("%d", (7,), transform=TFILTER_SUM)
        b = Query("%d", [7], transform=TFILTER_SUM)  # list normalised
        assert a == b
        assert a.digest == b.digest
        assert a.cache_key(0) == b.cache_key(0)

    def test_payload_changes_digest(self):
        base = Query("%d", (7,), transform=TFILTER_SUM)
        assert base.digest != Query("%d", (8,), transform=TFILTER_SUM).digest

    def test_filter_config_splits_stream_key(self):
        a = Query("%d", (7,), transform=TFILTER_SUM)
        b = Query("%d", (7,), transform=TFILTER_MAX)
        assert a.digest == b.digest  # same payload...
        assert a.stream_key != b.stream_key  # ...different stream
        assert a.cache_key(0) != b.cache_key(0)

    def test_rank_subset_splits_stream_key(self):
        assert (
            Query("%d", (1,)).stream_key
            != Query("%d", (1,), ranks=frozenset({0, 1})).stream_key
        )
        assert (
            Query("%d", (1,), ranks=[1, 0]).stream_key
            == Query("%d", (1,), ranks=frozenset({0, 1})).stream_key
        )

    def test_epoch_re_keys(self):
        q = Query("%d", (7,))
        assert q.cache_key(0) != q.cache_key(1)


class TestCoalescingCache:
    def test_miss_then_hit_then_ttl_expiry(self):
        clock = FakeClock()
        cache = CoalescingCache(ttl=1.0, clock=clock)
        key = ("sk", "digest", 0)
        assert cache.lookup(key) == (None, False)
        entry = cache.open(key, "leader", epoch=0)
        assert cache.complete(entry, (42,)) == ["leader"]
        assert cache.lookup(key) == ((42,), True)
        clock.advance(1.5)
        assert cache.lookup(key) == (None, False)

    def test_join_fans_out_to_all_waiters(self):
        cache = CoalescingCache(ttl=0.0, clock=FakeClock())
        key = ("sk", "d", 0)
        assert not cache.join(key, "early-bird")  # nothing in flight yet
        entry = cache.open(key, "leader", epoch=0)
        assert cache.join(key, "f1") and cache.join(key, "f2")
        assert cache.complete(entry, (1,)) == ["leader", "f1", "f2"]
        # ttl=0: coalescing worked but nothing was stored.
        assert cache.lookup(key) == (None, False)

    def test_uncacheable_completion_delivers_but_stores_nothing(self):
        cache = CoalescingCache(ttl=10.0, clock=FakeClock())
        entry = cache.open(("sk", "d", 0), "t", epoch=0)
        assert cache.complete(entry, (9,), cacheable=False) == ["t"]
        assert cache.lookup(("sk", "d", 0)) == (None, False)

    def test_abort_returns_waiters_without_caching(self):
        cache = CoalescingCache(ttl=10.0, clock=FakeClock())
        entry = cache.open(("sk", "d", 0), "t", epoch=0)
        cache.join(("sk", "d", 0), "u")
        assert cache.abort(entry) == ["t", "u"]
        assert cache.stats()["inflight"] == 0

    def test_drop_stale_removes_old_epochs_only(self):
        clock = FakeClock()
        cache = CoalescingCache(ttl=100.0, clock=clock)
        for epoch in (0, 1, 2):
            entry = cache.open(("sk", "d", epoch), "t", epoch=epoch)
            cache.complete(entry, (epoch,))
        other = cache.open(("other", "d", 0), "t", epoch=0)
        cache.complete(other, ("kept",))
        assert cache.drop_stale("sk", epoch=2) == 2
        assert cache.lookup(("sk", "d", 2)) == ((2,), True)
        assert cache.lookup(("other", "d", 0)) == (("kept",), True)

    def test_expire_sweeps_only_past_ttl(self):
        clock = FakeClock()
        cache = CoalescingCache(ttl=1.0, clock=clock)
        e1 = cache.open(("a", "d", 0), "t", epoch=0)
        cache.complete(e1, (1,))
        clock.advance(0.6)
        e2 = cache.open(("b", "d", 0), "t", epoch=0)
        cache.complete(e2, (2,))
        clock.advance(0.6)  # first entry now 1.2s old, second 0.6s
        assert cache.expire() == 1
        assert cache.lookup(("b", "d", 0)) == ((2,), True)

    def test_stats_counts_waiters(self):
        cache = CoalescingCache(ttl=1.0, clock=FakeClock())
        entry = cache.open(("a", "d", 0), "t", epoch=0)
        cache.join(("a", "d", 0), "u")
        assert cache.stats() == {"inflight": 1, "cached": 0, "waiters": 2}
        cache.complete(entry, (0,))
        assert cache.stats() == {"inflight": 0, "cached": 1, "waiters": 0}

    def test_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            CoalescingCache(ttl=-1.0)
