"""Tests for built-in transformation filters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import Packet
from repro.filters.base import FilterError, FilterState
from repro.filters.transform import (
    avg_filter,
    concat_filter,
    max_filter,
    min_filter,
    sum_filter,
    wavg_filter,
)


def ipkt(v, stream=1, tag=0, origin=0):
    return Packet(stream, tag, "%d", (v,), origin_rank=origin)


def fpkt(v):
    return Packet(1, 0, "%lf", (v,))


class TestReductions:
    def test_sum(self):
        out = sum_filter([ipkt(1), ipkt(2), ipkt(3)], FilterState())
        assert len(out) == 1
        assert out[0].values == (6,)
        assert out[0].fmt.canonical == "%d"

    def test_min_max(self):
        wave = [ipkt(5), ipkt(-3), ipkt(9)]
        assert min_filter(wave, FilterState())[0].values == (-3,)
        assert max_filter(wave, FilterState())[0].values == (9,)

    def test_float_sum(self):
        out = sum_filter([fpkt(0.5), fpkt(1.25)], FilterState())
        assert out[0].values == (1.75,)

    def test_multi_field_reduces_fieldwise(self):
        wave = [
            Packet(1, 0, "%d %lf", (1, 10.0)),
            Packet(1, 0, "%d %lf", (2, 20.0)),
        ]
        out = sum_filter(wave, FilterState())
        assert out[0].values == (3, 30.0)

    def test_array_fields_reduce_elementwise(self):
        wave = [
            Packet(1, 0, "%ad", ((1, 2, 3),)),
            Packet(1, 0, "%ad", ((10, 20, 30),)),
        ]
        out = sum_filter(wave, FilterState())
        assert out[0].values == ((11, 22, 33),)

    def test_array_length_mismatch_rejected(self):
        wave = [Packet(1, 0, "%ad", ((1,),)), Packet(1, 0, "%ad", ((1, 2),))]
        with pytest.raises(FilterError):
            sum_filter(wave, FilterState())

    def test_mixed_formats_rejected(self):
        with pytest.raises(FilterError):
            sum_filter([ipkt(1), fpkt(1.0)], FilterState())

    def test_string_fields_rejected(self):
        wave = [Packet(1, 0, "%s", ("a",)), Packet(1, 0, "%s", ("b",))]
        with pytest.raises(FilterError):
            sum_filter(wave, FilterState())

    def test_empty_wave(self):
        assert sum_filter([], FilterState()) == []

    def test_singleton_wave_identity(self):
        out = sum_filter([ipkt(42)], FilterState())
        assert out[0].values == (42,)

    def test_output_keeps_stream_and_tag(self):
        out = sum_filter([ipkt(5, stream=9, tag=77)], FilterState())
        assert out[0].stream_id == 9 and out[0].tag == 77

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=20))
    def test_sum_matches_python(self, values):
        out = sum_filter([ipkt(v) for v in values], FilterState())
        assert out[0].values == (sum(values),)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=20))
    def test_tree_associativity(self, values):
        """Reducing partials of a split equals reducing the whole wave.

        This is the property that lets the same filter run at every
        level of the MRNet tree.
        """
        mid = len(values) // 2
        left = sum_filter([ipkt(v) for v in values[:mid]], FilterState())
        right = sum_filter([ipkt(v) for v in values[mid:]], FilterState())
        two_level = sum_filter(left + right, FilterState())
        one_level = sum_filter([ipkt(v) for v in values], FilterState())
        assert two_level[0].values == one_level[0].values

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=20))
    def test_minmax_tree_associativity(self, values):
        mid = len(values) // 2
        for filt, ref in ((min_filter, min), (max_filter, max)):
            left = filt([ipkt(v) for v in values[:mid]], FilterState())
            right = filt([ipkt(v) for v in values[mid:]], FilterState())
            two = filt(left + right, FilterState())
            assert two[0].values == (ref(values),)


class TestAverage:
    def test_float_avg(self):
        out = avg_filter([fpkt(1.0), fpkt(2.0), fpkt(6.0)], FilterState())
        assert out[0].values == (3.0,)

    def test_int_avg_floor_division(self):
        out = avg_filter([ipkt(1), ipkt(2)], FilterState())
        assert out[0].values == (1,)

    def test_array_avg(self):
        wave = [
            Packet(1, 0, "%alf", ((2.0, 4.0),)),
            Packet(1, 0, "%alf", ((4.0, 8.0),)),
        ]
        out = avg_filter(wave, FilterState())
        assert out[0].values == ((3.0, 6.0),)

    def test_avg_rejects_strings(self):
        wave = [Packet(1, 0, "%s", ("a",))]
        with pytest.raises(FilterError):
            avg_filter(wave, FilterState())


class TestWeightedAverage:
    def wpkt(self, mean, count):
        return Packet(1, 0, "%lf %ud", (mean, count))

    def test_leaf_level(self):
        out = wavg_filter([self.wpkt(2.0, 1), self.wpkt(4.0, 1)], FilterState())
        assert out[0].values == (3.0, 2)

    def test_weighted_combination(self):
        out = wavg_filter([self.wpkt(1.0, 3), self.wpkt(5.0, 1)], FilterState())
        assert out[0].values == (2.0, 4)

    def test_zero_count(self):
        out = wavg_filter([self.wpkt(0.0, 0)], FilterState())
        assert out[0].values == (0.0, 0)

    def test_rejects_wrong_format(self):
        with pytest.raises(FilterError):
            wavg_filter([fpkt(1.0)], FilterState())

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=24
        ),
        st.integers(2, 5),
    )
    def test_exact_over_arbitrary_tree_split(self, values, nsplits):
        """wavg over any partition equals the global mean (paper's reason
        for carrying counts)."""
        leaves = [self.wpkt(v, 1) for v in values]
        # Uneven partition: chunk i gets i+1 leaves (roughly).
        chunks, i = [], 0
        size = 1
        while i < len(leaves):
            chunks.append(leaves[i : i + size])
            i += size
            size = (size % nsplits) + 1
        partials = [
            wavg_filter(chunk, FilterState())[0] for chunk in chunks if chunk
        ]
        out = wavg_filter(partials, FilterState())[0]
        assert out.values[1] == len(values)
        assert out.values[0] == pytest.approx(sum(values) / len(values), rel=1e-9)


class TestConcat:
    def test_scalars_to_vector(self):
        """'inputs n scalars and outputs a vector of length n'."""
        out = concat_filter([ipkt(1), ipkt(2), ipkt(3)], FilterState())
        assert len(out) == 1
        assert out[0].fmt.canonical == "%ad"
        assert out[0].values == ((1, 2, 3),)

    def test_flattens_arrays_at_upper_levels(self):
        wave = [
            Packet(1, 0, "%ad", ((1, 2),)),
            Packet(1, 0, "%ad", ((3,),)),
            ipkt(4),
        ]
        out = concat_filter(wave, FilterState())
        assert out[0].values == ((1, 2, 3, 4),)

    def test_string_concat(self):
        wave = [Packet(1, 0, "%s", ("a",)), Packet(1, 0, "%s", ("b",))]
        out = concat_filter(wave, FilterState())
        assert out[0].fmt.canonical == "%as"
        assert out[0].values == (("a", "b"),)

    def test_mixed_base_types_rejected(self):
        with pytest.raises(FilterError):
            concat_filter([ipkt(1), fpkt(1.0)], FilterState())

    def test_multi_field_rejected(self):
        wave = [Packet(1, 0, "%d %d", (1, 2))]
        with pytest.raises(FilterError):
            concat_filter(wave, FilterState())

    def test_empty_wave(self):
        assert concat_filter([], FilterState()) == []

    def test_order_preserved(self):
        out = concat_filter([ipkt(i) for i in (5, 3, 9, 1)], FilterState())
        assert out[0].values == ((5, 3, 9, 1),)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
    def test_concat_tree_flattening(self, values):
        mid = len(values) // 2
        state = FilterState()
        parts = []
        if values[:mid]:
            parts += concat_filter([ipkt(v) for v in values[:mid]], state)
        if values[mid:]:
            parts += concat_filter([ipkt(v) for v in values[mid:]], state)
        out = concat_filter(parts, FilterState())
        assert out[0].values == (tuple(values),)


class TestVectorizedPaths:
    """ndarray-backed waves (large wire arrays) reduce vectorized and
    must agree exactly with the scalar tuple path."""

    def _wire(self, fmt, values, tag=0):
        """A lazy packet as a comm node would see it: ndarray-backed."""
        from repro.core.packet import Packet as P

        return P.lazy_from_wire(P(1, tag, fmt, values).to_bytes())

    def _vals(self, seed, n=300):
        return tuple((seed * 31 + i * 7) % 1000 - 500 for i in range(n))

    @pytest.mark.parametrize("filt", [sum_filter, min_filter, max_filter])
    def test_reduction_matches_scalar_path(self, filt):
        import numpy as np

        waves = [self._vals(s) for s in range(4)]
        wire_wave = [self._wire("%ad", (v,)) for v in waves]
        tuple_wave = [Packet(1, 0, "%ad", (v,)) for v in waves]
        assert all(
            isinstance(p.raw_values[0], np.ndarray) for p in wire_wave
        )
        out_vec = filt(wire_wave, FilterState())
        out_ref = filt(tuple_wave, FilterState())
        assert out_vec[0].values == out_ref[0].values
        # the vectorized output carries an ndarray until materialised
        assert isinstance(out_vec[0].raw_values[0], np.ndarray)

    def test_float_reduction_matches(self):
        waves = [tuple(float(v) / 3 for v in self._vals(s)) for s in range(3)]
        wire_wave = [self._wire("%alf", (v,)) for v in waves]
        tuple_wave = [Packet(1, 0, "%alf", (v,)) for v in waves]
        out_vec = sum_filter(wire_wave, FilterState())
        out_ref = sum_filter(tuple_wave, FilterState())
        assert out_vec[0].values[0] == pytest.approx(out_ref[0].values[0])

    def test_avg_matches_scalar_path(self):
        waves = [self._vals(s) for s in range(4)]
        out_vec = avg_filter(
            [self._wire("%ad", (v,)) for v in waves], FilterState()
        )
        out_ref = avg_filter(
            [Packet(1, 0, "%ad", (v,)) for v in waves], FilterState()
        )
        assert out_vec[0].values == out_ref[0].values

    def test_concat_matches_scalar_path(self):
        waves = [self._vals(s, n=200) for s in range(3)]
        out_vec = concat_filter(
            [self._wire("%ad", (v,)) for v in waves], FilterState()
        )
        out_ref = concat_filter(
            [Packet(1, 0, "%ad", (v,)) for v in waves], FilterState()
        )
        assert out_vec[0].values == out_ref[0].values
        assert out_vec[0].fmt.canonical == "%ad"

    def test_concat_mixed_scalar_and_vector(self):
        import numpy as np

        big = self._vals(1, n=100)
        wave = [self._wire("%d", (7,)), self._wire("%ad", (big,))]
        assert isinstance(wave[1].raw_values[0], np.ndarray)
        out = concat_filter(wave, FilterState())
        assert out[0].values == ((7,) + big,)

    def test_mismatched_lengths_rejected(self):
        wave = [
            self._wire("%ad", (self._vals(0, n=100),)),
            self._wire("%ad", (self._vals(1, n=101),)),
        ]
        with pytest.raises(FilterError):
            sum_filter(wave, FilterState())

    def test_vector_sum_overflow_raises_like_scalar_path(self):
        from repro.core.formats import FormatError

        big = tuple([2**31 - 1] * 100)
        wave = [self._wire("%ad", (big,)) for _ in range(2)]
        with pytest.raises(FormatError):
            sum_filter(wave, FilterState())

    def test_wide_int_sum_stays_exact(self):
        """%ald sums use the exact path (no int64 wraparound)."""
        from repro.core.formats import FormatError

        big = tuple([2**62] * 100)
        wave = [self._wire("%ald", (big,)) for _ in range(2)]
        with pytest.raises(FormatError):
            # 2**63 is out of int64 range: must raise, not wrap
            sum_filter(wave, FilterState())

    def test_reduction_output_reencodes_correctly(self):
        waves = [self._vals(s) for s in range(3)]
        out = sum_filter([self._wire("%ad", (v,)) for v in waves], FilterState())[0]
        decoded = Packet.from_bytes(out.to_bytes())
        assert decoded.values == out.values
