"""Tests for the call-path prefix-tree merge filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import Packet
from repro.filters.base import FilterError, FilterState
from repro.filters.pathtree import PathTree, PathTreeFilter

filt = PathTreeFilter()


def path_pkt(*frames, origin=0):
    return Packet(1, 0, "%as", (frames,), origin_rank=origin)


class TestPathTree:
    def test_single_path(self):
        t = PathTree()
        t.add_path(["main", "solve", "waitall"])
        assert t.num_nodes == 3
        assert t.num_processes == 1
        assert t.paths() == [(("main", "solve", "waitall"), 1)]

    def test_shared_prefix_counts(self):
        t = PathTree()
        t.add_path(["main", "solve", "waitall"])
        t.add_path(["main", "solve", "compute"])
        t.add_path(["main", "io"])
        assert t.children["main"].count == 3
        assert t.children["main"].children["solve"].count == 2
        assert t.num_processes == 3

    def test_path_ending_at_interior_node(self):
        t = PathTree()
        t.add_path(["main", "solve"])
        t.add_path(["main", "solve", "deeper"])
        assert (("main", "solve"), 1) in t.paths()
        assert (("main", "solve", "deeper"), 1) in t.paths()

    def test_merge_equals_bulk_insert(self):
        a, b, bulk = PathTree(), PathTree(), PathTree()
        paths = [["m", "x"], ["m", "y"], ["m", "x", "z"], ["other"]]
        for p in paths[:2]:
            a.add_path(p)
            bulk.add_path(p)
        for p in paths[2:]:
            b.add_path(p)
            bulk.add_path(p)
        a.merge(b)
        assert a == bulk

    def test_arrays_roundtrip(self):
        t = PathTree()
        t.add_path(["main", "a", "b"])
        t.add_path(["main", "c"])
        t.add_path(["init"])
        assert PathTree.from_arrays(*t.to_arrays()) == t

    def test_from_arrays_validation(self):
        with pytest.raises(FilterError):
            PathTree.from_arrays(("a",), (0, 1), (1,))
        with pytest.raises(FilterError):
            PathTree.from_arrays(("a", "b"), (0, 5), (1, 1))
        with pytest.raises(FilterError):
            PathTree.from_arrays(("a", "a"), (0, 0), (1, 1))

    def test_render(self):
        t = PathTree()
        t.add_path(["main", "solve"])
        t.add_path(["main", "solve"])
        text = t.render()
        assert "main [2]" in text and "  solve [2]" in text

    def test_add_path_count_validation(self):
        with pytest.raises(ValueError):
            PathTree().add_path(["x"], count=0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(st.sampled_from("abcdef"), min_size=1, max_size=5),
            min_size=1,
            max_size=20,
        )
    )
    def test_process_count_conserved(self, raw_paths):
        t = PathTree()
        for p in raw_paths:
            t.add_path(p)
        assert t.num_processes == len(raw_paths)
        assert sum(c for _, c in t.paths()) == len(raw_paths)
        # Serialization preserves everything.
        assert PathTree.from_arrays(*t.to_arrays()) == t


class TestPathTreeFilter:
    def test_leaf_paths_merge(self):
        out = filt(
            [
                path_pkt("main", "solve", "waitall"),
                path_pkt("main", "solve", "waitall"),
                path_pkt("main", "io"),
            ],
            FilterState(),
        )
        assert len(out) == 1
        tree = PathTree.from_arrays(*out[0].unpack())
        assert tree.num_processes == 3
        assert (("main", "solve", "waitall"), 2) in tree.paths()

    def test_tree_composition(self):
        left = filt([path_pkt("m", "a"), path_pkt("m", "b")], FilterState())
        right = filt([path_pkt("m", "a"), path_pkt("x")], FilterState())
        merged = PathTree.from_arrays(
            *filt(left + right, FilterState())[0].unpack()
        )
        flat = PathTree()
        for p in (["m", "a"], ["m", "b"], ["m", "a"], ["x"]):
            flat.add_path(p)
        assert merged == flat

    def test_rejects_other_formats(self):
        with pytest.raises(FilterError):
            filt([Packet(1, 0, "%d", (1,))], FilterState())

    def test_empty_wave(self):
        assert filt([], FilterState()) == []

    def test_over_live_network(self):
        """End-to-end: 8 back-ends' stacks merge into one tree."""
        from repro.core import Network
        from repro.topology import balanced_tree

        stacks = {
            rank: ("main", "solve", "mpi_waitall")
            if rank != 5
            else ("main", "solve", "compute_residual")
            for rank in range(8)
        }
        with Network(balanced_tree(2, 3)) as net:
            fid = net.registry.register_transform(PathTreeFilter())
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=fid)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=10)
                bstream.send("%as", stacks[rank])
            tree = PathTree.from_arrays(*stream.recv(timeout=10).unpack())
        assert tree.num_processes == 8
        assert (("main", "solve", "mpi_waitall"), 7) in tree.paths()
        assert (("main", "solve", "compute_residual"), 1) in tree.paths()
