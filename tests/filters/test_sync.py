"""Tests for synchronization filters (waves, timeouts, pass-through)."""

import pytest

from repro.core.packet import Packet
from repro.filters.sync import DoNotWaitFilter, TimeOutFilter, WaitForAllFilter


def pkt(value: int, origin: int = 0) -> Packet:
    return Packet(1, 0, "%d", (value,), origin_rank=origin)


class FakeClock:
    """Deterministic, manually-advanced clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestWaitForAll:
    def test_holds_until_all_children_report(self):
        f = WaitForAllFilter(["a", "b", "c"])
        assert f.push("a", pkt(1)) == []
        assert f.push("b", pkt(2)) == []
        waves = f.push("c", pkt(3))
        assert len(waves) == 1
        assert sorted(p.values[0] for p in waves[0]) == [1, 2, 3]
        assert f.pending == 0

    def test_fifo_within_child(self):
        f = WaitForAllFilter(["a", "b"])
        f.push("a", pkt(1))
        f.push("a", pkt(2))
        w1 = f.push("b", pkt(10))
        w2 = f.push("b", pkt(20))
        assert [p.values[0] for p in w1[0]] == [1, 10]
        assert [p.values[0] for p in w2[0]] == [2, 20]

    def test_multiple_waves_released_at_once(self):
        f = WaitForAllFilter(["a", "b"])
        f.push("a", pkt(1))
        f.push("a", pkt(2))
        f.push("b", pkt(10))
        waves = f.push("b", pkt(20))
        # Second 'b' completes only the second wave; first was already out.
        assert len(waves) == 1

    def test_unknown_child_rejected(self):
        f = WaitForAllFilter(["a"])
        with pytest.raises(KeyError):
            f.push("zz", pkt(1))

    def test_add_child_mid_stream(self):
        f = WaitForAllFilter(["a"])
        f.add_child("b")
        assert f.push("a", pkt(1)) == []
        assert len(f.push("b", pkt(2))) == 1

    def test_remove_child_returns_backlog(self):
        f = WaitForAllFilter(["a", "b"])
        f.push("a", pkt(1))
        backlog = f.remove_child("a")
        assert [p.values[0] for p in backlog] == [1]
        # Remaining child can now complete waves alone.
        assert len(f.push("b", pkt(2))) == 1

    def test_flush_releases_everything(self):
        f = WaitForAllFilter(["a", "b", "c"])
        f.push("a", pkt(1))
        f.push("a", pkt(2))
        f.push("b", pkt(3))
        waves = f.flush()
        total = sum(len(w) for w in waves)
        assert total == 3
        assert f.pending == 0

    def test_no_children_never_fires(self):
        f = WaitForAllFilter([])
        assert f.poll() == []


class TestTimeOut:
    def test_full_wave_before_timeout(self):
        clock = FakeClock()
        f = TimeOutFilter(["a", "b"], timeout=1.0, clock=clock)
        f.push("a", pkt(1))
        waves = f.push("b", pkt(2))
        assert len(waves) == 1 and len(waves[0]) == 2

    def test_partial_wave_after_timeout(self):
        clock = FakeClock()
        f = TimeOutFilter(["a", "b"], timeout=1.0, clock=clock)
        f.push("a", pkt(1))
        assert f.poll() == []
        clock.advance(1.5)
        waves = f.poll()
        assert len(waves) == 1
        assert [p.values[0] for p in waves[0]] == [1]

    def test_timer_resets_after_release(self):
        clock = FakeClock()
        f = TimeOutFilter(["a", "b"], timeout=1.0, clock=clock)
        f.push("a", pkt(1))
        clock.advance(1.5)
        assert len(f.poll()) == 1
        # A new partial wave needs its own full timeout.
        f.push("a", pkt(2))
        clock.advance(0.5)
        assert f.poll() == []
        clock.advance(0.6)
        assert len(f.poll()) == 1

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            TimeOutFilter(["a"], timeout=0)

    def test_wave_then_pending_starts_new_timer(self):
        clock = FakeClock()
        f = TimeOutFilter(["a", "b"], timeout=1.0, clock=clock)
        f.push("a", pkt(1))
        f.push("a", pkt(2))  # second packet queued toward next wave
        waves = f.push("b", pkt(3))
        assert len(waves) == 1
        clock.advance(1.1)
        late = f.poll()
        assert len(late) == 1
        assert [p.values[0] for p in late[0]] == [2]


class TestDoNotWait:
    def test_immediate_passthrough(self):
        f = DoNotWaitFilter(["a", "b"])
        waves = f.push("a", pkt(1))
        assert waves == [[pkt(1)]]
        assert f.pending == 0

    def test_each_packet_is_own_wave(self):
        f = DoNotWaitFilter(["a"])
        f._queues["a"].extend([pkt(1), pkt(2)])
        waves = f.poll()
        assert [w[0].values[0] for w in waves] == [1, 2]
