"""Tests for the histogram custom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import Packet
from repro.filters.base import FilterError, FilterState
from repro.filters.histogram import HistogramFilter


def sample(v):
    return Packet(1, 0, "%lf", (float(v),))


class TestHistogram:
    def test_basic_binning(self):
        h = HistogramFilter([0.0, 1.0, 2.0])
        out = h([sample(-1), sample(0.5), sample(1.5), sample(5)], FilterState())
        # slots: under, [0,1), [1,2), over
        assert out[0].values == ((1, 1, 1, 1),)
        assert out[0].fmt.canonical == "%auld"

    def test_edge_values_go_right(self):
        h = HistogramFilter([0.0, 1.0])
        out = h([sample(0.0), sample(1.0)], FilterState())
        assert out[0].values == ((0, 1, 1),)

    def test_merge_partials(self):
        h = HistogramFilter([0.0, 10.0])
        left = h([sample(1), sample(2)], FilterState())
        right = h([sample(-5), sample(20)], FilterState())
        out = h(left + right, FilterState())
        assert out[0].values == ((1, 2, 1),)

    def test_mixed_scalars_and_partials(self):
        h = HistogramFilter([0.0, 10.0])
        partial = h([sample(5)], FilterState())
        out = h(partial + [sample(3)], FilterState())
        assert out[0].values == ((0, 2, 0),)

    def test_wrong_partial_size_rejected(self):
        h2 = HistogramFilter([0.0, 10.0])
        h3 = HistogramFilter([0.0, 5.0, 10.0])
        partial = h3([sample(1)], FilterState())
        with pytest.raises(FilterError):
            h2(partial, FilterState())

    def test_wrong_format_rejected(self):
        h = HistogramFilter([0.0, 1.0])
        with pytest.raises(FilterError):
            h([Packet(1, 0, "%d", (1,))], FilterState())

    def test_construction_validation(self):
        with pytest.raises(FilterError):
            HistogramFilter([1.0])
        with pytest.raises(FilterError):
            HistogramFilter([1.0, 1.0])
        with pytest.raises(FilterError):
            HistogramFilter([2.0, 1.0])

    def test_empty_wave(self):
        h = HistogramFilter([0.0, 1.0])
        assert h([], FilterState()) == []

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50))
    def test_count_conservation_over_tree(self, values):
        """Total count equals sample count however the tree splits."""
        h = HistogramFilter([-50.0, 0.0, 50.0])
        third = max(1, len(values) // 3)
        chunks = [values[i : i + third] for i in range(0, len(values), third)]
        partials = [
            h([sample(v) for v in chunk], FilterState())[0] for chunk in chunks
        ]
        merged = h(partials, FilterState())[0]
        assert sum(merged.values[0]) == len(values)
        flat = h([sample(v) for v in values], FilterState())[0]
        assert merged.values == flat.values
