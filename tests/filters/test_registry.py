"""Tests for the filter registry and dynamic loading."""

import textwrap

import pytest

from repro.core.packet import Packet
from repro.filters.base import FilterError, FilterState, make_filter
from repro.filters.registry import (
    SFILTER_DONTWAIT,
    SFILTER_TIMEOUT,
    SFILTER_WAITFORALL,
    TFILTER_AVG,
    TFILTER_CONCAT,
    TFILTER_MAX,
    TFILTER_MIN,
    TFILTER_NULL,
    TFILTER_SUM,
    FilterRegistry,
    default_registry,
)
from repro.filters.sync import DoNotWaitFilter, TimeOutFilter, WaitForAllFilter


class TestBuiltins:
    def test_all_builtin_transforms_present(self):
        reg = default_registry()
        for fid, name in [
            (TFILTER_NULL, "null"),
            (TFILTER_MIN, "min"),
            (TFILTER_MAX, "max"),
            (TFILTER_SUM, "sum"),
            (TFILTER_AVG, "avg"),
            (TFILTER_CONCAT, "concat"),
        ]:
            assert reg.get_transform(fid).name == name

    def test_sync_factories(self):
        reg = default_registry()
        assert isinstance(reg.make_sync(SFILTER_WAITFORALL, ["a"]), WaitForAllFilter)
        assert isinstance(
            reg.make_sync(SFILTER_TIMEOUT, ["a"], timeout=0.5), TimeOutFilter
        )
        assert isinstance(reg.make_sync(SFILTER_DONTWAIT, ["a"]), DoNotWaitFilter)

    def test_classification(self):
        reg = default_registry()
        assert reg.is_transform(TFILTER_SUM) and not reg.is_sync(TFILTER_SUM)
        assert reg.is_sync(SFILTER_WAITFORALL) and not reg.is_transform(
            SFILTER_WAITFORALL
        )

    def test_unknown_ids(self):
        reg = default_registry()
        with pytest.raises(FilterError):
            reg.get_transform(9999)
        with pytest.raises(FilterError):
            reg.make_sync(9999, [])


class TestRegistration:
    def test_register_transform_assigns_unique_ids(self):
        reg = FilterRegistry()
        f1 = make_filter(lambda ps, st: list(ps), "f1")
        f2 = make_filter(lambda ps, st: list(ps), "f2")
        id1, id2 = reg.register_transform(f1), reg.register_transform(f2)
        assert id1 != id2
        assert id1 >= 1000  # user range
        assert reg.get_transform(id1) is f1

    def test_register_sync(self):
        reg = FilterRegistry()
        fid = reg.register_sync(WaitForAllFilter)
        assert isinstance(reg.make_sync(fid, ["x"]), WaitForAllFilter)

    def test_registries_independent(self):
        r1, r2 = FilterRegistry(), FilterRegistry()
        fid = r1.register_transform(make_filter(lambda ps, st: [], "only-in-r1"))
        with pytest.raises(FilterError):
            r2.get_transform(fid)


class TestLoadFilterFunc:
    """The paper's load_filterFunc flow via a Python file."""

    def test_load_from_file(self, tmp_path):
        mod = tmp_path / "myfilter.py"
        mod.write_text(
            textwrap.dedent(
                """
                def double(packets, state):
                    return [p.replace(values=(p.values[0] * 2,)) for p in packets]
                """
            )
        )
        reg = FilterRegistry()
        fid = reg.load_filter_func(str(mod), "double")
        filt = reg.get_transform(fid)
        out = filt([Packet(1, 0, "%d", (21,))], FilterState())
        assert out[0].values == (42,)

    def test_stateful_loaded_filter(self, tmp_path):
        mod = tmp_path / "counter.py"
        mod.write_text(
            textwrap.dedent(
                """
                def running_count(packets, state):
                    state['n'] = state.get('n', 0) + len(packets)
                    return [packets[0].replace(values=(state['n'],))] if packets else []
                """
            )
        )
        reg = FilterRegistry()
        fid = reg.load_filter_func(str(mod), "running_count")
        filt = reg.get_transform(fid)
        state = filt.make_state()
        p = Packet(1, 0, "%d", (0,))
        assert filt([p, p], state)[0].values == (2,)
        assert filt([p], state)[0].values == (3,)

    def test_missing_function(self, tmp_path):
        mod = tmp_path / "empty.py"
        mod.write_text("x = 1\n")
        reg = FilterRegistry()
        with pytest.raises(FilterError):
            reg.load_filter_func(str(mod), "nope")

    def test_missing_file(self):
        reg = FilterRegistry()
        with pytest.raises(FilterError):
            reg.load_filter_func("/does/not/exist.py", "f")

    def test_non_callable(self, tmp_path):
        mod = tmp_path / "notfunc.py"
        mod.write_text("thing = 3\n")
        reg = FilterRegistry()
        with pytest.raises(FilterError):
            reg.load_filter_func(str(mod), "thing")

    def test_module_cached_across_loads(self, tmp_path):
        mod = tmp_path / "oncemod.py"
        mod.write_text(
            "import itertools\n"
            "_c = itertools.count()\n"
            "LOAD = next(_c)\n"
            "def f(packets, state):\n"
            "    return list(packets)\n"
            "def g(packets, state):\n"
            "    return []\n"
        )
        reg = FilterRegistry()
        reg.load_filter_func(str(mod), "f")
        reg.load_filter_func(str(mod), "g")  # same module, not re-executed
        from repro.filters.loader import load_module

        assert load_module(str(mod)).LOAD == 0

    def test_broken_module_raises(self, tmp_path):
        mod = tmp_path / "broken.py"
        mod.write_text("raise RuntimeError('boom')\n")
        reg = FilterRegistry()
        with pytest.raises(FilterError):
            reg.load_filter_func(str(mod), "f")


class TestFormatEnforcement:
    def test_filter_with_format_rejects_mismatched_packet(self):
        filt = make_filter(lambda ps, st: list(ps), "typed", fmt="%d")
        with pytest.raises(FilterError):
            filt([Packet(1, 0, "%lf", (1.0,))], FilterState())

    def test_filter_without_format_accepts_anything(self):
        filt = make_filter(lambda ps, st: list(ps), "untyped")
        out = filt([Packet(1, 0, "%s", ("x",))], FilterState())
        assert len(out) == 1
