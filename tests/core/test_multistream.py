"""Many-stream runtime at one NodeCore: batched lazy stream specs
(``TAG_NEW_STREAMS``), copy-on-write endpoint sharing, and the
O(active) tick machinery that keeps thousands of idle streams free."""

import time

from repro.core.packet import Packet
from repro.core.protocol import (
    TAG_NEW_STREAMS,
    WAVE_REDUCE,
    make_close_stream,
    make_endpoint_report,
    make_join,
    make_leave,
    make_new_stream,
    make_new_streams,
)
from repro.filters.registry import (
    SFILTER_TIMEOUT,
    SFILTER_WAITFORALL,
    TFILTER_SUM,
)

from .test_commnode import build_node, drain


def announce(core, n_streams, group=(0, 1, 2, 3), first_sid=1):
    """One TAG_NEW_STREAMS wave registering *n_streams* lazy specs."""
    specs = [
        (sid, 0, SFILTER_WAITFORALL, TFILTER_SUM, 0.0, 0, 0, WAVE_REDUCE)
        for sid in range(first_sid, first_sid + n_streams)
    ]
    core.handle_control_down(make_new_streams([list(group)], specs))
    core.flush()
    return [s[0] for s in specs]


def data_up(sid, value):
    return Packet(sid, 1, "%d", (value,))


class TestBulkAnnouncement:
    def test_registers_lazy_specs_without_managers(self):
        core, _, _, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        sids = announce(core, 100)
        assert set(core._stream_specs) == set(sids)
        assert core.streams == {}

    def test_forwards_whole_batch_once_per_routed_link(self):
        core, _, child_inboxes, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        # 50 streams over a group routed through link 0 only: child 0
        # sees ONE announcement packet, child 1 sees nothing.
        announce(core, 50, group=(0, 1))
        left = drain(child_inboxes[0])
        assert [p.tag for p in left] == [TAG_NEW_STREAMS]
        assert drain(child_inboxes[1]) == []

    def test_first_data_up_materializes_and_aggregates(self):
        core, parent_inbox, _, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        (sid,) = announce(core, 1)
        drain(parent_inbox)

        core.dispatch(links[0], data_up(sid, 5))
        # First data packet flipped the spec into a full manager.
        assert sid in core.streams
        assert sid not in core._stream_specs
        core.flush()
        assert drain(parent_inbox) == []  # WaitForAll still holding
        core.dispatch(links[1], data_up(sid, 7))
        core.flush()
        (wave,) = drain(parent_inbox)
        assert wave.stream_id == sid
        assert wave.values == (12,)

    def test_first_data_down_materializes_and_routes(self):
        core, parent_inbox, child_inboxes, links = build_node(
            n_children=2, expected=4
        )
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        (sid,) = announce(core, 1)
        for inbox in child_inboxes:
            drain(inbox)

        core.dispatch(core.parent_link_id, Packet(sid, 1, "%d", (0,)))
        core.flush()
        assert sid in core.streams
        for inbox in child_inboxes:
            (pkt,) = drain(inbox)
            assert pkt.stream_id == sid

    def test_close_of_pending_spec_forwards_and_drops(self):
        core, _, child_inboxes, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        (sid,) = announce(core, 1, group=(2, 3))
        drain(child_inboxes[1])

        core.handle_control_down(make_close_stream(sid))
        core.flush()
        assert sid not in core._stream_specs
        assert sid not in core.streams
        (pkt,) = drain(child_inboxes[1])  # closed along the group route
        assert pkt.values == (sid,)
        assert drain(child_inboxes[0]) == []


class TestSpecEndpointSharing:
    def test_specs_over_one_group_share_one_frozenset(self):
        core, _, _, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        announce(core, 50)
        sets = [spec["endpoints"] for spec in core._stream_specs.values()]
        assert len({id(s) for s in sets}) == 1  # ONE rank set, 50 specs
        grp = core.routing.group(frozenset([0, 1, 2, 3]))
        assert sets[0] is grp.endpoints

    def test_leave_rebinds_copy_on_write_preserving_sharing(self):
        core, _, _, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        announce(core, 50)
        grp = core.routing.group(frozenset([0, 1, 2, 3]))

        core.dispatch(links[1], make_leave(3))
        sets = [spec["endpoints"] for spec in core._stream_specs.values()]
        assert all(s == frozenset([0, 1, 2]) for s in sets)
        assert len({id(s) for s in sets}) == 1  # still ONE shared set
        # The interned group is immutable: divergence never leaks back.
        assert grp.endpoints == frozenset([0, 1, 2, 3])

    def test_join_extends_a_pending_spec(self):
        core, _, _, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        (sid,) = announce(core, 1)
        core.dispatch(links[1], make_join(9, [sid]))
        assert core._stream_specs[sid]["endpoints"] == frozenset(
            [0, 1, 2, 3, 9]
        )
        # Materialization sees the joined membership.
        core.dispatch(links[0], data_up(sid, 1))
        assert core.streams[sid].endpoints == frozenset([0, 1, 2, 3, 9])


class TestOActiveTicks:
    def test_idle_streams_never_enter_the_active_set(self):
        core, _, _, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        for sid in range(1, 101):
            core.handle_control_down(
                make_new_stream(sid, [0, 1, 2, 3], SFILTER_WAITFORALL,
                                TFILTER_SUM)
            )
        assert len(core.streams) == 100
        assert core._active_streams == {}
        assert core.next_timeout_deadline() is None
        assert not core.has_timeout_streams
        # A half-finished WaitForAll wave still arms nothing: only
        # TimeOut filters have deadlines.
        core.dispatch(links[0], data_up(1, 5))
        assert core._active_streams == {}
        assert core.next_timeout_deadline() is None

    def test_timeout_stream_arms_then_disarms(self):
        core, parent_inbox, _, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        sid = 7
        core.handle_control_down(
            make_new_stream(sid, [0, 1, 2, 3], SFILTER_TIMEOUT, TFILTER_SUM,
                            sync_timeout=0.02)
        )
        assert core.has_timeout_streams
        # No wave in flight yet: nothing armed, loops may sleep forever.
        assert core.next_timeout_deadline() is None

        core.dispatch(links[0], data_up(sid, 3))
        core.flush()
        drain(parent_inbox)
        assert sid in core._active_streams
        deadline = core.next_timeout_deadline()
        assert deadline is not None and deadline > time.monotonic() - 1.0

        time.sleep(0.03)
        core.poll_streams()
        core.flush()
        (wave,) = drain(parent_inbox)
        assert wave.values == (3,)  # partial wave released on timeout
        assert core._active_streams == {}
        assert core.next_timeout_deadline() is None

    def test_discard_clears_armed_state(self):
        core, _, _, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        sid = 3
        core.handle_control_down(
            make_new_stream(sid, [0, 1, 2, 3], SFILTER_TIMEOUT, TFILTER_SUM,
                            sync_timeout=5.0)
        )
        core.dispatch(links[0], data_up(sid, 1))
        assert sid in core._active_streams
        core.handle_control_down(make_close_stream(sid))
        assert sid not in core._active_streams
        assert not core.has_timeout_streams
        assert core.next_timeout_deadline() is None
