"""Property tests: NodeCore invariants under random event sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import decode_batch
from repro.core.commnode import NodeCore
from repro.core.packet import Packet
from repro.core.protocol import (
    CONTROL_STREAM_ID,
    make_endpoint_report,
    make_new_stream,
)
from repro.filters.registry import (
    SFILTER_DONTWAIT,
    SFILTER_WAITFORALL,
    TFILTER_NULL,
    TFILTER_SUM,
    default_registry,
)
from repro.transport.channel import Channel, Inbox


def build_node(n_children):
    registry = default_registry()
    parent_inbox = Inbox()
    node_inbox = Inbox()
    parent_ch = Channel(parent_inbox, node_inbox)
    core = NodeCore(
        "prop-node", registry, n_children, parent=parent_ch.end_b,
        inbox=node_inbox,
    )
    child_inboxes, links = [], []
    for _ in range(n_children):
        ci = Inbox()
        ch = Channel(node_inbox, ci)
        core.add_child(ch.end_a)
        child_inboxes.append(ci)
        links.append(ch.link_id)
    return core, parent_inbox, child_inboxes, links


def drain_packets(inbox):
    out = []
    while not inbox.empty():
        _, payload = inbox.get_nowait()
        if payload is not None:
            out.extend(decode_batch(payload))
    return out


class TestConservation:
    @settings(max_examples=60, deadline=None)
    @given(
        n_children=st.integers(1, 5),
        sends=st.lists(
            st.tuples(st.integers(0, 4), st.integers(-100, 100)),
            min_size=1,
            max_size=40,
        ),
    )
    def test_passthrough_conserves_packets(self, n_children, sends):
        """DoNotWait + null filter: every upstream packet in comes out
        toward the parent, in per-child order, none invented."""
        core, parent_inbox, _, links = build_node(n_children)
        for i, link in enumerate(links):
            core.dispatch(link, make_endpoint_report([i]))
        core.handle_control_down(
            make_new_stream(7, range(n_children), SFILTER_DONTWAIT, TFILTER_NULL)
        )
        core.flush()
        drain_packets(parent_inbox)  # discard the endpoint report

        per_child_sent = {link: [] for link in links}
        for child_idx, value in sends:
            link = links[child_idx % n_children]
            core.dispatch(link, Packet(7, 0, "%d", (value,)))
            per_child_sent[link].append(value)
        core.flush()
        out = [p for p in drain_packets(parent_inbox) if p.stream_id == 7]
        assert len(out) == len(sends)
        assert sorted(p.values[0] for p in out) == sorted(
            v for _, v in sends
        )

    @settings(max_examples=40, deadline=None)
    @given(
        n_children=st.integers(2, 4),
        rounds=st.integers(1, 8),
        values=st.data(),
    )
    def test_sum_reduction_conserves_total(self, n_children, rounds, values):
        """Wait-For-All + sum: total over all waves equals total sent,
        however the per-child interleaving goes."""
        core, parent_inbox, _, links = build_node(n_children)
        for i, link in enumerate(links):
            core.dispatch(link, make_endpoint_report([i]))
        core.handle_control_down(
            make_new_stream(9, range(n_children), SFILTER_WAITFORALL, TFILTER_SUM)
        )
        core.flush()
        drain_packets(parent_inbox)

        # Each child sends `rounds` packets, interleaved in a random
        # global order drawn by hypothesis.
        pending = []
        total = 0
        for link in links:
            for _ in range(rounds):
                v = values.draw(st.integers(-1000, 1000))
                total += v
                pending.append((link, v))
        order = values.draw(st.permutations(pending))
        for link, v in order:
            core.dispatch(link, Packet(9, 0, "%d", (v,)))
        core.flush()
        out = [p for p in drain_packets(parent_inbox) if p.stream_id == 9]
        assert len(out) == rounds  # one aggregate per complete wave
        assert sum(p.values[0] for p in out) == total

    @settings(max_examples=40, deadline=None)
    @given(
        events=st.lists(
            st.sampled_from(["report", "data", "close-child", "unknown-ctrl"]),
            max_size=25,
        )
    )
    def test_arbitrary_event_order_never_crashes(self, events):
        """Whatever order reports / data / closures arrive in, the node
        stays consistent and raises nothing."""
        core, parent_inbox, _, links = build_node(3)
        next_rank = 0
        open_links = list(links)
        for event in events:
            if not open_links:
                break
            link = open_links[next_rank % len(open_links)]
            if event == "report":
                core.dispatch(link, make_endpoint_report([next_rank]))
                next_rank += 1
            elif event == "data":
                core.dispatch(link, Packet(42, 1, "%d", (next_rank,)))
            elif event == "close-child":
                core.handle_payload(link, None)
                open_links.remove(link)
            else:
                core.dispatch(
                    link, Packet(CONTROL_STREAM_ID, -99, "%d", (0,))
                )
            core.flush()
        # Terminal state is coherent.
        assert set(core.routing.links) <= set(links)
        assert not core.shutting_down
