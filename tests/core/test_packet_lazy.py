"""Tests for the zero-copy lazy data plane.

Covers the three new packet constructors (`lazy_from_wire`, `trusted`,
and eager `decode_from(trusted=...)`), codec edge cases on both the
eager and lazy paths, the round-trip identity property, and the relay
fast path through a comm node (asserted via the
``packets_relayed_zero_copy`` stat counter).
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import PacketBuffer, decode_batch, encode_batch
from repro.core.commnode import NodeCore
from repro.core.packet import _NUMPY_THRESHOLD, Packet, PacketDecodeError
from repro.core.protocol import CONTROL_STREAM_ID, TAG_NEW_STREAM, make_new_stream
from repro.filters.registry import (
    SFILTER_DONTWAIT,
    TFILTER_NULL,
    default_registry,
)
from repro.transport.channel import Channel, Inbox

_HEADER = struct.Struct(">IiI")
_U32 = struct.Struct(">I")


# -- edge-case corpus, exercised on both decode paths ---------------------

EDGE_PACKETS = [
    # empty arrays of every base kind
    Packet(1, 1, "%ad %af %as %ac", ((), (), (), ())),
    # arrays straddling the numpy threshold
    Packet(1, 2, "%ad", (tuple(range(_NUMPY_THRESHOLD - 1)),)),
    Packet(1, 3, "%ad", (tuple(range(_NUMPY_THRESHOLD)),)),
    Packet(1, 4, "%ad", (tuple(range(_NUMPY_THRESHOLD + 1)),)),
    Packet(1, 5, "%alf", (tuple(float(i) for i in range(_NUMPY_THRESHOLD * 3)),)),
    # multi-byte UTF-8, scalar and array
    Packet(1, 6, "%s", ("héllo ✓ 日本語 𝄞",)),
    Packet(1, 7, "%as", (("", "é", "日本", "𝄞𝄞"),)),
    # blobs, including NUL and high bytes
    Packet(1, 8, "%b", (b"\x00\xff\x7f binary",)),
    Packet(1, 9, "%b %d", (b"", -7)),
    # a mixed kitchen-sink packet
    Packet(
        3,
        -5,
        "%c %ud %uld %f %b %aud %as",
        (255, 2**32 - 1, 2**64 - 1, 0.5, b"xy", (0, 2**32 - 1), ("a", "ß")),
        origin_rank=42,
    ),
]


@pytest.mark.parametrize("p", EDGE_PACKETS, ids=lambda p: f"tag{p.tag}")
def test_edge_cases_eager_and_lazy_agree(p):
    frame = p.to_bytes()
    eager = Packet.from_bytes(frame)
    lazy = Packet.lazy_from_wire(frame)
    assert eager == p
    assert lazy == p
    assert lazy.values == eager.values


@pytest.mark.parametrize("p", EDGE_PACKETS, ids=lambda p: f"tag{p.tag}")
def test_lazy_roundtrip_identity(p):
    frame = p.to_bytes()
    assert Packet.lazy_from_wire(frame).to_bytes() == frame


# -- the round-trip property, over arbitrary well-typed packets -----------

_field = st.sampled_from(
    [
        ("%d", st.integers(-(2**31), 2**31 - 1)),
        ("%uld", st.integers(0, 2**64 - 1)),
        ("%lf", st.floats(allow_nan=False, width=64)),
        ("%s", st.text(max_size=30)),
        ("%b", st.binary(max_size=30)),
        ("%ad", st.lists(st.integers(-(2**31), 2**31 - 1), max_size=100)),
        ("%alf", st.lists(st.floats(allow_nan=False, width=64), max_size=100)),
        ("%as", st.lists(st.text(max_size=10), max_size=5)),
    ]
)


@st.composite
def packets(draw):
    fields = draw(st.lists(_field, min_size=1, max_size=5))
    fmt = " ".join(spec for spec, _ in fields)
    values = tuple(draw(strategy) for _, strategy in fields)
    return Packet(
        draw(st.integers(0, 2**32 - 1)),
        draw(st.integers(-(2**31), 2**31 - 1)),
        fmt,
        values,
        origin_rank=draw(st.integers(0, 2**32 - 1)),
    )


class TestRoundTripProperty:
    @settings(max_examples=150, deadline=None)
    @given(packets())
    def test_lazy_identity_and_value_equality(self, p):
        frame = p.to_bytes()
        lazy = Packet.lazy_from_wire(frame)
        # identity BEFORE any decode
        assert lazy.to_bytes() == frame
        # and still after values were forced
        eager = Packet.from_bytes(frame)
        assert lazy.values == eager.values
        assert lazy.to_bytes() == frame

    @settings(max_examples=50, deadline=None)
    @given(st.lists(packets(), max_size=8))
    def test_batch_relay_is_byte_identical(self, ps):
        payload = encode_batch(ps)
        relayed = encode_batch(decode_batch(payload))
        assert relayed == payload


class TestLazyDecode:
    def test_header_only_parse(self):
        p = Packet(7, -3, "%d %s", (1, "x"), origin_rank=9)
        lazy = Packet.lazy_from_wire(p.to_bytes())
        assert (lazy.stream_id, lazy.tag, lazy.origin_rank) == (7, -3, 9)
        assert not lazy.values_decoded
        # fmt access parses the format but still not the values
        assert lazy.fmt.canonical == "%d %s"
        assert not lazy.values_decoded
        assert lazy.values == (1, "x")
        assert lazy.values_decoded

    def test_nbytes_does_not_decode(self):
        p = Packet(1, 2, "%ad", (tuple(range(100)),))
        lazy = Packet.lazy_from_wire(p.to_bytes())
        assert lazy.nbytes == len(p.to_bytes())
        assert not lazy.values_decoded

    def test_encoded_view_is_zero_copy(self):
        frame = Packet(1, 2, "%d", (5,)).to_bytes()
        view = memoryview(frame)
        lazy = Packet.lazy_from_wire(view)
        assert lazy.encoded_view() is view
        assert not lazy.values_decoded

    def test_non_canonical_format_relays_byte_identically(self):
        """A frame with non-canonical fmt text must relay bit-exact."""
        fmt_text = b"  %d   %s "  # decodes fine, but not canonical
        body = struct.pack(">i", 42) + _U32.pack(1) + b"z"
        frame = (
            _HEADER.pack(5, 6, 7) + _U32.pack(len(fmt_text)) + fmt_text + body
        )
        lazy = Packet.lazy_from_wire(frame)
        assert lazy.to_bytes() == frame
        assert lazy.values == (42, "z")
        # the eager path canonicalises instead
        assert Packet.from_bytes(frame).to_bytes() != frame

    def test_header_truncation_raises_immediately(self):
        with pytest.raises(PacketDecodeError):
            Packet.lazy_from_wire(b"\x00\x01")

    def test_body_truncation_raises_on_access(self):
        data = Packet(0, 0, "%d %s", (1, "hello world")).to_bytes()
        for cut in (13, 16, len(data) // 2, len(data) - 1):
            lazy = Packet.lazy_from_wire(data[:cut])
            with pytest.raises(PacketDecodeError):
                lazy.values

    def test_truncated_large_array_raises_on_access(self):
        data = Packet(0, 0, "%alf", (tuple(float(i) for i in range(500)),)).to_bytes()
        lazy = Packet.lazy_from_wire(data[: len(data) - 8])
        with pytest.raises(PacketDecodeError):
            lazy.values

    def test_trailing_garbage_raises_on_access(self):
        lazy = Packet.lazy_from_wire(Packet(0, 0, "%d", (1,)).to_bytes() + b"xx")
        with pytest.raises(PacketDecodeError):
            lazy.values

    def test_batch_framing_still_validated_eagerly(self):
        payload = encode_batch([Packet(0, 0, "%d", (1,))])
        with pytest.raises(PacketDecodeError):
            decode_batch(payload[:-3])
        with pytest.raises(PacketDecodeError):
            decode_batch(payload + b"zz")
        with pytest.raises(PacketDecodeError):
            decode_batch(b"")

    def test_eager_decode_batch_mode(self):
        ps = [Packet(0, i, "%d", (i,)) for i in range(3)]
        out = decode_batch(encode_batch(ps), lazy=False)
        assert out == ps
        assert all(p.values_decoded for p in out)


class TestTrustedConstructor:
    def test_skips_normalisation(self):
        # the validating constructor would reject this out-of-range int
        with pytest.raises(Exception):
            Packet(0, 0, "%d", (2**40,))
        p = Packet.trusted(0, 0, "%d", (7,))
        assert p.values == (7,)
        assert p.to_bytes() == Packet(0, 0, "%d", (7,)).to_bytes()

    def test_carries_ndarray_fields(self):
        arr = np.arange(200, dtype=np.int64)
        arr.setflags(write=False)
        p = Packet.trusted(1, 2, "%ald", (arr,))
        assert isinstance(p.raw_values[0], np.ndarray)
        assert p.values == (tuple(range(200)),)
        assert Packet.from_bytes(p.to_bytes()).values == p.values

    def test_decode_from_untrusted_revalidates(self):
        p = Packet(1, 2, "%d %as", (5, ("a", "b")))
        blob = p.to_bytes()
        q, end = Packet.decode_from(blob, 0, trusted=False)
        assert q == p and end == len(blob)


class TestNdarrayBackedFields:
    def test_large_wire_array_decodes_to_readonly_view(self):
        p = Packet(1, 0, "%alf", (tuple(float(i) for i in range(1000)),))
        lazy = Packet.lazy_from_wire(p.to_bytes())
        raw = lazy.raw_values[0]
        assert isinstance(raw, np.ndarray)
        assert not raw.flags.writeable
        assert len(raw) == 1000
        # public access materialises a plain tuple and caches it
        assert lazy.values[0] == tuple(float(i) for i in range(1000))
        assert lazy.values is lazy.values

    def test_small_wire_array_stays_tuple(self):
        p = Packet(1, 0, "%ad", ((1, 2, 3),))
        lazy = Packet.lazy_from_wire(p.to_bytes())
        assert isinstance(lazy.raw_values[0], tuple)

    def test_array_accessor(self):
        vals = tuple(float(i) for i in range(300))
        lazy = Packet.lazy_from_wire(Packet(1, 0, "%alf", (vals,)).to_bytes())
        arr = lazy.array(0)
        assert isinstance(arr, np.ndarray)
        assert float(arr.sum()) == sum(vals)
        with pytest.raises(Exception):
            Packet(1, 0, "%s", ("x",)).array(0)

    def test_ndarray_equality_and_hash_match_eager(self):
        vals = tuple(range(500))
        frame = Packet(1, 0, "%aud", (vals,)).to_bytes()
        lazy, eager = Packet.lazy_from_wire(frame), Packet.from_bytes(frame)
        assert lazy == eager
        assert hash(lazy) == hash(eager)


class TestRelayFastPath:
    def _build_relay(self):
        registry = default_registry()
        parent_inbox, node_inbox = Inbox(), Inbox()
        up = Channel(parent_inbox, node_inbox)
        core = NodeCore("relay", registry, 1, parent=up.end_b, inbox=node_inbox)
        child_inbox = Inbox()
        down = Channel(node_inbox, child_inbox)
        core.add_child(down.end_a)
        return core, parent_inbox, child_inbox, down.link_id

    def test_unknown_stream_relays_without_decoding(self):
        core, parent_inbox, _, child_link = self._build_relay()
        payload = encode_batch(
            [Packet(99, 5, "%alf %s", (tuple(map(float, range(200))), "x"), 3)]
        )
        core.handle_payload(child_link, payload)
        assert core.stats["packets_relayed_zero_copy"] == 1
        # the buffered packet is still an undecoded wire frame
        (buffered,) = core._parent_buffer._packets
        assert not buffered.values_decoded
        core.flush()
        _, sent = parent_inbox.get_nowait()
        assert sent == payload  # byte-identical relay

    def test_downstream_flood_relays_without_decoding(self):
        core, _, child_inbox, _ = self._build_relay()
        payload = encode_batch([Packet(42, 1, "%d", (5,), 0)])
        core.handle_payload(core.parent_link_id, payload)
        assert core.stats["packets_relayed_zero_copy"] == 1
        core.flush()
        _, sent = child_inbox.get_nowait()
        assert sent == payload

    def test_null_filter_stream_stays_lazy(self):
        core, parent_inbox, _, child_link = self._build_relay()
        new_stream = make_new_stream(
            7, [0], sync_filter_id=SFILTER_DONTWAIT, transform_filter_id=TFILTER_NULL
        )
        core.routing.add_report(child_link, [0])
        core.handle_control_down(new_stream)
        data = encode_batch([Packet(7, 1, "%ad", (tuple(range(100)),), 0)])
        core.handle_payload(child_link, data)
        assert core.stats["packets_relayed_zero_copy"] == 1
        core.flush()
        deliveries = []
        while not parent_inbox.empty():
            _, sent = parent_inbox.get_nowait()
            deliveries.extend(decode_batch(sent))
        data_pkts = [p for p in deliveries if p.stream_id == 7]
        assert len(data_pkts) == 1
        assert data_pkts[0].values == (tuple(range(100)),)

    def test_aggregating_stream_is_not_zero_copy(self):
        from repro.filters.registry import SFILTER_WAITFORALL, TFILTER_SUM

        core, parent_inbox, _, child_link = self._build_relay()
        new_stream = make_new_stream(
            7, [0], sync_filter_id=SFILTER_WAITFORALL, transform_filter_id=TFILTER_SUM
        )
        core.routing.add_report(child_link, [0])
        core.handle_control_down(new_stream)
        data = encode_batch([Packet(7, 1, "%d", (5,), 0)])
        core.handle_payload(child_link, data)
        assert core.stats["packets_relayed_zero_copy"] == 0


class TestPacketBufferLazy:
    def test_add_does_not_force_decode_or_encode(self):
        frame = Packet(1, 2, "%ad", (tuple(range(500)),)).to_bytes()
        lazy = Packet.lazy_from_wire(frame)
        buf = PacketBuffer("x")
        buf.add(lazy)
        assert buf.nbytes == len(frame)
        assert not lazy.values_decoded
