"""Tests for per-node stream managers."""

import pytest

from repro.core.packet import Packet
from repro.core.stream_manager import StreamManager
from repro.filters.registry import (
    SFILTER_DONTWAIT,
    SFILTER_TIMEOUT,
    SFILTER_WAITFORALL,
    TFILTER_CONCAT,
    TFILTER_NULL,
    TFILTER_SUM,
    default_registry,
)


def ipkt(v, stream=5, origin=0):
    return Packet(stream, 0, "%d", (v,), origin_rank=origin)


@pytest.fixture
def registry():
    return default_registry()


class TestUpstream:
    def test_wait_for_all_plus_sum(self, registry):
        mgr = StreamManager.create(
            5, [0, 1], [10, 11], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        assert mgr.push_upstream(10, ipkt(3)) == []
        out = mgr.push_upstream(11, ipkt(4))
        assert len(out) == 1 and out[0].values == (7,)

    def test_do_not_wait_null_passthrough(self, registry):
        mgr = StreamManager.create(
            5, [0], [10], registry, SFILTER_DONTWAIT, TFILTER_NULL
        )
        out = mgr.push_upstream(10, ipkt(9))
        assert [p.values for p in out] == [(9,)]

    def test_timeout_sync_uses_param(self, registry):
        clock_value = [0.0]
        mgr = StreamManager.create(
            5,
            [0, 1],
            [10, 11],
            registry,
            SFILTER_TIMEOUT,
            TFILTER_SUM,
            sync_timeout=2.0,
            clock=lambda: clock_value[0],
        )
        mgr.push_upstream(10, ipkt(1))
        assert mgr.poll_upstream() == []
        clock_value[0] = 2.5
        out = mgr.poll_upstream()
        assert len(out) == 1 and out[0].values == (1,)

    def test_state_persists_across_waves(self, registry):
        from repro.filters.base import make_filter

        def running_sum(packets, state):
            state["acc"] = state.get("acc", 0) + sum(p.values[0] for p in packets)
            return [packets[0].replace(values=(state["acc"],))]

        fid = registry.register_transform(make_filter(running_sum, "rsum"))
        mgr = StreamManager.create(5, [0], [10], registry, SFILTER_DONTWAIT, fid)
        assert mgr.push_upstream(10, ipkt(5))[0].values == (5,)
        assert mgr.push_upstream(10, ipkt(2))[0].values == (7,)

    def test_closed_manager_drops(self, registry):
        mgr = StreamManager.create(
            5, [0], [10], registry, SFILTER_DONTWAIT, TFILTER_NULL
        )
        mgr.close()
        assert mgr.push_upstream(10, ipkt(1)) == []
        assert mgr.poll_upstream() == []

    def test_flush_pushes_partial_waves_through_filter(self, registry):
        mgr = StreamManager.create(
            5, [0, 1], [10, 11], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        mgr.push_upstream(10, ipkt(3))
        out = mgr.flush_upstream()
        assert len(out) == 1 and out[0].values == (3,)

    def test_drop_link_releases_backlog_and_unblocks(self, registry):
        mgr = StreamManager.create(
            5, [0, 1], [10, 11], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        mgr.push_upstream(10, ipkt(3))
        out = mgr.drop_link(10)
        assert out and out[0].values == (3,)
        assert 10 not in mgr.child_links
        # Remaining child completes waves alone now.
        out = mgr.push_upstream(11, ipkt(4))
        assert out and out[0].values == (4,)

    def test_pending_counts(self, registry):
        mgr = StreamManager.create(
            5, [0, 1], [10, 11], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        mgr.push_upstream(10, ipkt(3))
        assert mgr.pending == 1


class TestDownstream:
    def test_no_downstream_filter_is_identity(self, registry):
        mgr = StreamManager.create(
            5, [0], [10], registry, SFILTER_WAITFORALL, TFILTER_NULL
        )
        p = ipkt(1)
        assert mgr.transform_downstream(p) == [p]

    def test_downstream_filter_applied(self, registry):
        from repro.filters.base import make_filter

        def double(packets, state):
            return [p.replace(values=(p.values[0] * 2,)) for p in packets]

        fid = registry.register_transform(make_filter(double, "double"))
        mgr = StreamManager.create(
            5,
            [0],
            [10],
            registry,
            SFILTER_WAITFORALL,
            TFILTER_NULL,
            down_transform_filter_id=fid,
        )
        out = mgr.transform_downstream(ipkt(21))
        assert out[0].values == (42,)


class TestCreation:
    def test_concat_manager(self, registry):
        mgr = StreamManager.create(
            7, [0, 1, 2], [10, 11, 12], registry, SFILTER_WAITFORALL, TFILTER_CONCAT
        )
        mgr.push_upstream(10, ipkt(1, stream=7))
        mgr.push_upstream(11, ipkt(2, stream=7))
        out = mgr.push_upstream(12, ipkt(3, stream=7))
        assert out[0].values == ((1, 2, 3),)

    def test_endpoints_frozen(self, registry):
        mgr = StreamManager.create(
            5, [3, 1], [10], registry, SFILTER_WAITFORALL, TFILTER_NULL
        )
        assert mgr.endpoints == frozenset({1, 3})

    def test_repr(self, registry):
        mgr = StreamManager.create(
            5, [0], [10], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        assert "stream=5" in repr(mgr) and "sum" in repr(mgr)
