"""Tests for packet batching/unbatching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import PacketBuffer, decode_batch, encode_batch
from repro.core.packet import Packet, PacketDecodeError


def pkt(i: int) -> Packet:
    return Packet(i % 4, i, "%d %s", (i, f"payload{i}"), origin_rank=i)


class TestBatchCodec:
    def test_roundtrip(self):
        packets = [pkt(i) for i in range(5)]
        assert decode_batch(encode_batch(packets)) == packets

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_order_preserved(self):
        packets = [pkt(i) for i in range(20)]
        assert [p.tag for p in decode_batch(encode_batch(packets))] == list(range(20))

    def test_truncated_rejected(self):
        data = encode_batch([pkt(0), pkt(1)])
        with pytest.raises(PacketDecodeError):
            decode_batch(data[: len(data) - 3])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(PacketDecodeError):
            decode_batch(encode_batch([pkt(0)]) + b"zz")

    def test_empty_input_rejected(self):
        with pytest.raises(PacketDecodeError):
            decode_batch(b"")

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1000), max_size=30))
    def test_roundtrip_property(self, tags):
        packets = [pkt(t) for t in tags]
        assert decode_batch(encode_batch(packets)) == packets


class TestPacketBuffer:
    def test_accumulate_and_drain(self):
        buf = PacketBuffer("child0")
        buf.add(pkt(1))
        buf.extend([pkt(2), pkt(3)])
        assert len(buf) == 3
        assert buf.nbytes > 0
        drained = buf.drain()
        assert [p.tag for p in drained] == [1, 2, 3]
        assert len(buf) == 0 and buf.nbytes == 0

    def test_encode_clears(self):
        buf = PacketBuffer("x")
        buf.add(pkt(7))
        data = buf.encode()
        assert decode_batch(data) == [pkt(7)]
        assert len(buf) == 0

    def test_should_flush_on_packet_count(self):
        buf = PacketBuffer("x", max_packets=2)
        buf.add(pkt(0))
        assert not buf.should_flush()
        buf.add(pkt(1))
        assert buf.should_flush()

    def test_should_flush_on_bytes(self):
        buf = PacketBuffer("x", max_bytes=10)
        buf.add(pkt(0))
        assert buf.should_flush()

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketBuffer("x", max_packets=0)
        with pytest.raises(ValueError):
            PacketBuffer("x", max_bytes=0)

    def test_destination_kept(self):
        assert PacketBuffer("child7").destination == "child7"

    def test_packets_held_by_reference(self):
        """Zero-copy: the buffer holds the same objects it was given."""
        p = pkt(0)
        buf = PacketBuffer("x")
        buf.add(p)
        assert buf.drain()[0] is p
