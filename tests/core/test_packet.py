"""Unit + property tests for the packet codec."""

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formats import FormatError, parse_format
from repro.core.packet import Packet, PacketDecodeError


class TestConstruction:
    def test_basic(self):
        p = Packet(1, 7, "%d %f %s", (42, 2.5, "hello"))
        assert p.stream_id == 1
        assert p.tag == 7
        assert p.unpack() == (42, 2.5, "hello")

    def test_value_count_mismatch(self):
        with pytest.raises(FormatError):
            Packet(0, 0, "%d %d", (1,))
        with pytest.raises(FormatError):
            Packet(0, 0, "%d", (1, 2))

    def test_type_enforcement(self):
        with pytest.raises(FormatError):
            Packet(0, 0, "%d", ("nope",))
        with pytest.raises(FormatError):
            Packet(0, 0, "%s", (3,))
        with pytest.raises(FormatError):
            Packet(0, 0, "%f", ("x",))
        with pytest.raises(FormatError):
            Packet(0, 0, "%b", ("str not bytes",))

    def test_bool_is_not_int(self):
        with pytest.raises(FormatError):
            Packet(0, 0, "%d", (True,))

    def test_int_range_enforced(self):
        with pytest.raises(FormatError):
            Packet(0, 0, "%d", (2**31,))
        with pytest.raises(FormatError):
            Packet(0, 0, "%ud", (-1,))
        Packet(0, 0, "%ld", (2**31,))  # fits in int64

    def test_char_accepts_single_char_str(self):
        assert Packet(0, 0, "%c", ("A",)).values == (65,)
        with pytest.raises(FormatError):
            Packet(0, 0, "%c", ("AB",))

    def test_array_normalised_to_tuple(self):
        p = Packet(0, 0, "%ad", ([1, 2, 3],))
        assert p.values == ((1, 2, 3),)

    def test_array_rejects_scalar(self):
        with pytest.raises(FormatError):
            Packet(0, 0, "%ad", (5,))

    def test_array_rejects_str(self):
        with pytest.raises(FormatError):
            Packet(0, 0, "%ad", ("123",))

    def test_string_array(self):
        p = Packet(0, 0, "%as", (["a", "b"],))
        assert p.values == (("a", "b"),)
        with pytest.raises(FormatError):
            Packet(0, 0, "%as", ([1, 2],))

    def test_char_array_from_bytes(self):
        p = Packet(0, 0, "%ac", (b"hi",))
        assert p.values == ((104, 105),)

    def test_header_ranges(self):
        with pytest.raises(ValueError):
            Packet(-1, 0, "%d", (0,))
        with pytest.raises(ValueError):
            Packet(0, 2**31, "%d", (0,))
        with pytest.raises(ValueError):
            Packet(0, 0, "%d", (0,), origin_rank=-1)

    def test_int_coerced_to_float_fields(self):
        p = Packet(0, 0, "%lf", (3,))
        assert p.values == (3.0,)
        assert isinstance(p.values[0], float)


class TestAccessors:
    def test_sequence_protocol(self):
        p = Packet(0, 0, "%d %s", (1, "x"))
        assert len(p) == 2
        assert p[0] == 1 and p[1] == "x"
        assert list(p) == [1, "x"]

    def test_equality(self):
        a = Packet(1, 2, "%d", (3,), origin_rank=4)
        b = Packet(1, 2, "%d", (3,), origin_rank=4)
        assert a == b and hash(a) == hash(b)
        assert a != Packet(1, 2, "%d", (5,), origin_rank=4)
        assert a != Packet(1, 2, "%d", (3,), origin_rank=0)

    def test_replace(self):
        p = Packet(1, 2, "%d", (3,))
        q = p.replace(values=(9,))
        assert q.values == (9,) and q.stream_id == 1 and p.values == (3,)

    def test_repr_truncates(self):
        p = Packet(0, 0, "%d %d %d %d %d %d", tuple(range(6)))
        assert "..." in repr(p)


class TestCodec:
    def test_roundtrip_simple(self):
        p = Packet(3, -5, "%d %f %s", (1, 0.5, "héllo"), origin_rank=9)
        q = Packet.from_bytes(p.to_bytes())
        assert q == p

    def test_roundtrip_all_types(self):
        p = Packet(
            1,
            2,
            "%c %d %ud %ld %uld %f %lf %s %b %ad %af %as",
            (
                7,
                -1,
                2**32 - 1,
                -(2**62),
                2**63,
                0.25,
                math.pi,
                "string ✓",
                b"\x00\xffbytes",
                (1, -2, 3),
                (0.5, 1.5),
                ("x", "", "yz"),
            ),
        )
        assert Packet.from_bytes(p.to_bytes()) == p

    def test_empty_arrays(self):
        p = Packet(0, 0, "%ad %as", ((), ()))
        assert Packet.from_bytes(p.to_bytes()) == p

    def test_encoding_cached(self):
        p = Packet(0, 0, "%d", (1,))
        assert p.to_bytes() is p.to_bytes()

    def test_nbytes(self):
        p = Packet(0, 0, "%d", (1,))
        assert p.nbytes == len(p.to_bytes())

    def test_float32_precision_loss_is_consistent(self):
        value = 1.1  # not representable in binary32
        p = Packet(0, 0, "%f", (value,))
        q = Packet.from_bytes(p.to_bytes())
        assert q.values[0] == struct.unpack(">f", struct.pack(">f", value))[0]

    def test_trailing_garbage_rejected(self):
        data = Packet(0, 0, "%d", (1,)).to_bytes() + b"x"
        with pytest.raises(PacketDecodeError):
            Packet.from_bytes(data)

    def test_truncation_rejected(self):
        data = Packet(0, 0, "%d %s", (1, "hello world")).to_bytes()
        for cut in (1, 5, len(data) // 2, len(data) - 1):
            with pytest.raises(PacketDecodeError):
                Packet.from_bytes(data[:cut])

    def test_garbage_rejected(self):
        with pytest.raises(PacketDecodeError):
            Packet.from_bytes(b"\xff" * 40)

    def test_decode_from_offset(self):
        a = Packet(1, 0, "%d", (10,))
        b = Packet(2, 0, "%s", ("x",))
        blob = a.to_bytes() + b.to_bytes()
        p1, off = Packet.decode_from(blob, 0)
        p2, end = Packet.decode_from(blob, off)
        assert (p1, p2) == (a, b)
        assert end == len(blob)


# -- property-based round-trip over arbitrary well-typed packets ----------

_i32 = st.integers(-(2**31), 2**31 - 1)
_u32 = st.integers(0, 2**32 - 1)
_i64 = st.integers(-(2**63), 2**63 - 1)
_u64 = st.integers(0, 2**64 - 1)
_f64 = st.floats(allow_nan=False, width=64)
_f32 = st.floats(allow_nan=False, width=32)
_text = st.text(max_size=50)

_field = st.sampled_from(
    [
        ("%c", st.integers(0, 255)),
        ("%d", _i32),
        ("%ud", _u32),
        ("%ld", _i64),
        ("%uld", _u64),
        ("%f", _f32),
        ("%lf", _f64),
        ("%s", _text),
        ("%b", st.binary(max_size=50)),
        ("%ad", st.lists(_i32, max_size=20)),
        ("%aud", st.lists(_u32, max_size=20)),
        ("%ald", st.lists(_i64, max_size=20)),
        ("%auld", st.lists(_u64, max_size=20)),
        ("%af", st.lists(_f32, max_size=20)),
        ("%alf", st.lists(_f64, max_size=20)),
        ("%ac", st.lists(st.integers(0, 255), max_size=20)),
        ("%as", st.lists(_text, max_size=10)),
    ]
)


@st.composite
def packets(draw):
    fields = draw(st.lists(_field, min_size=1, max_size=8))
    fmt = " ".join(spec for spec, _ in fields)
    values = tuple(draw(strategy) for _, strategy in fields)
    return Packet(
        draw(st.integers(0, 2**32 - 1)),
        draw(st.integers(-(2**31), 2**31 - 1)),
        fmt,
        values,
        origin_rank=draw(st.integers(0, 2**32 - 1)),
    )


class TestCodecProperties:
    @settings(max_examples=200, deadline=None)
    @given(packets())
    def test_roundtrip(self, p):
        q = Packet.from_bytes(p.to_bytes())
        assert q == p

    @settings(max_examples=50, deadline=None)
    @given(packets(), packets())
    def test_batave_concatenated_decode(self, a, b):
        blob = a.to_bytes() + b.to_bytes()
        p1, off = Packet.decode_from(blob, 0)
        p2, end = Packet.decode_from(blob, off)
        assert (p1, p2, end) == (a, b, len(blob))

    @settings(max_examples=100, deadline=None)
    @given(packets())
    def test_encoding_deterministic(self, p):
        q = Packet(p.stream_id, p.tag, p.fmt, p.values, p.origin_rank)
        assert p.to_bytes() == q.to_bytes()


class TestNumpyIntegration:
    """The vectorized array fast paths (HPC guide: vectorize hot loops)."""

    def test_ndarray_field_input(self):
        import numpy as np

        p = Packet(1, 0, "%ald", (np.arange(10, dtype=np.int64),))
        assert p.values[0] == tuple(range(10))

    def test_large_array_roundtrip_int(self):
        import numpy as np

        arr = np.arange(-5000, 5000, dtype=np.int32)
        p = Packet(1, 0, "%ad", (arr,))
        assert Packet.from_bytes(p.to_bytes()) == p

    def test_large_array_roundtrip_float(self):
        import numpy as np

        arr = np.linspace(-1.0, 1.0, 4096)
        p = Packet(1, 0, "%alf", (arr,))
        q = Packet.from_bytes(p.to_bytes())
        assert q.values[0] == pytest.approx(tuple(arr.tolist()))

    def test_numpy_and_struct_paths_agree(self):
        """Encodings are byte-identical either side of the threshold."""
        import numpy as np

        small = tuple(range(60))
        big = tuple(range(70))
        for vals in (small, big):
            from_tuple = Packet(1, 0, "%aud", (vals,)).to_bytes()
            from_array = Packet(
                1, 0, "%aud", (np.array(vals, dtype=np.uint32),)
            ).to_bytes()
            assert from_tuple == from_array

    def test_numpy_scalars_accepted(self):
        import numpy as np

        p = Packet(1, 0, "%d %ud %lf %f", (
            np.int32(-3), np.uint64(7), np.float64(1.5), np.float32(0.25)
        ))
        assert p.values == (-3, 7, 1.5, 0.25)

    def test_numpy_bool_rejected(self):
        import numpy as np

        with pytest.raises(FormatError):
            Packet(1, 0, "%d", (np.True_,))

    def test_ndarray_range_enforced(self):
        import numpy as np

        with pytest.raises(FormatError):
            Packet(1, 0, "%ad", (np.array([2**40]),))
        with pytest.raises(FormatError):
            Packet(1, 0, "%aud", (np.array([-1]),))

    def test_ndarray_kind_enforced(self):
        import numpy as np

        with pytest.raises(FormatError):
            Packet(1, 0, "%ad", (np.array([1.5]),))
        with pytest.raises(FormatError):
            Packet(1, 0, "%alf", (np.array(["a"]),))

    def test_ndarray_must_be_1d(self):
        import numpy as np

        with pytest.raises(FormatError):
            Packet(1, 0, "%ad", (np.zeros((2, 2), dtype=np.int32),))

    def test_float_array_from_int_ndarray(self):
        import numpy as np

        p = Packet(1, 0, "%alf", (np.arange(3),))
        assert p.values[0] == (0.0, 1.0, 2.0)
        assert all(isinstance(v, float) for v in p.values[0])
