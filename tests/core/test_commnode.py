"""Unit tests for NodeCore — the comm-node protocol engine, driven
directly (no threads), so every control path is observable."""

import pytest

from repro.core.batching import decode_batch, encode_batch
from repro.core.commnode import NodeCore
from repro.core.packet import Packet
from repro.core.protocol import (
    CONTROL_STREAM_ID,
    TAG_ENDPOINT_REPORT,
    TAG_SHUTDOWN,
    make_close_stream,
    make_endpoint_report,
    make_new_stream,
    make_shutdown,
)
from repro.filters.registry import (
    SFILTER_DONTWAIT,
    SFILTER_WAITFORALL,
    TFILTER_NULL,
    TFILTER_SUM,
    default_registry,
)
from repro.transport.channel import Channel, Inbox


def build_node(n_children=2, with_parent=True, expected=None):
    """A NodeCore wired to inbox-stub parent/children.

    Returns (core, parent_inbox, [child_inboxes], parent_child_end,
    [child ends the node sends down on])."""
    registry = default_registry()
    parent_inbox = Inbox()
    node_inbox = Inbox()
    parent_end = None
    if with_parent:
        ch = Channel(parent_inbox, node_inbox)
        parent_end = ch.end_b  # node's end toward the parent
    core = NodeCore(
        "test-node",
        registry,
        expected if expected is not None else n_children,
        parent=parent_end,
        inbox=node_inbox,
    )
    child_inboxes, child_links = [], []
    for _ in range(n_children):
        ci = Inbox()
        ch = Channel(node_inbox, ci)
        core.add_child(ch.end_a)
        child_inboxes.append(ci)
        child_links.append(ch.link_id)
    return core, parent_inbox, child_inboxes, child_links


def drain(inbox):
    """All packets delivered to an inbox, flattened."""
    out = []
    while not inbox.empty():
        _, payload = inbox.get_nowait()
        if payload is not None:
            out.extend(decode_batch(payload))
        else:
            out.append(None)
    return out


class TestEndpointReports:
    def test_aggregates_and_forwards_when_complete(self):
        core, parent_inbox, _, links = build_node(n_children=2, expected=4)
        core.dispatch(links[0], make_endpoint_report([0, 1]))
        core.flush()
        assert drain(parent_inbox) == []  # not complete yet
        core.dispatch(links[1], make_endpoint_report([2, 3]))
        core.flush()
        (report,) = drain(parent_inbox)
        assert report.tag == TAG_ENDPOINT_REPORT
        assert report.values == ((0, 1, 2, 3),)
        assert core.ready

    def test_report_sent_once(self):
        core, parent_inbox, _, links = build_node(n_children=1, expected=1)
        core.dispatch(links[0], make_endpoint_report([0]))
        core.flush()
        assert len(drain(parent_inbox)) == 1
        core.dispatch(links[0], make_endpoint_report([0]))
        core.flush()
        assert drain(parent_inbox) == []

    def test_routing_learned_per_link(self):
        core, _, _, links = build_node(n_children=2, expected=2)
        core.dispatch(links[0], make_endpoint_report([0]))
        core.dispatch(links[1], make_endpoint_report([1]))
        assert core.routing.ranks_behind(links[0]) == {0}
        assert core.routing.link_of(1) == links[1]


class TestStreamLifecycle:
    def setup_streams(self, core, links, endpoints=(0, 1), transform=TFILTER_SUM):
        core.dispatch(links[0], make_endpoint_report([0]))
        core.dispatch(links[1], make_endpoint_report([1]))
        core.handle_control_down(
            make_new_stream(5, endpoints, SFILTER_WAITFORALL, transform)
        )

    def test_new_stream_creates_manager_and_forwards(self):
        core, _, child_inboxes, links = build_node(n_children=2, expected=2)
        self.setup_streams(core, links)
        assert 5 in core.streams
        core.flush()
        for ci in child_inboxes:
            pkts = drain(ci)
            assert len(pkts) == 1 and pkts[0].tag != 0
            assert pkts[0].stream_id == CONTROL_STREAM_ID

    def test_new_stream_forwards_only_to_relevant_links(self):
        core, _, child_inboxes, links = build_node(n_children=2, expected=2)
        self.setup_streams(core, links, endpoints=(0,))
        core.flush()
        assert len(drain(child_inboxes[0])) == 1
        assert drain(child_inboxes[1]) == []

    def test_upstream_aggregation(self):
        core, parent_inbox, _, links = build_node(n_children=2, expected=2)
        self.setup_streams(core, links)
        drain(parent_inbox)
        core.dispatch(links[0], Packet(5, 0, "%d", (3,)))
        core.flush()
        assert [p for p in drain(parent_inbox) if p.stream_id == 5] == []
        core.dispatch(links[1], Packet(5, 0, "%d", (4,)))
        core.flush()
        outs = [p for p in drain(parent_inbox) if p.stream_id == 5]
        assert len(outs) == 1 and outs[0].values == (7,)
        assert core.stats["waves_aggregated"] == 1

    def test_downstream_fanout_by_reference(self):
        core, _, child_inboxes, links = build_node(n_children=2, expected=2)
        self.setup_streams(core, links, transform=TFILTER_NULL)
        core.flush()
        for ci in child_inboxes:
            drain(ci)
        pkt = Packet(5, 200, "%s", ("to-all",))
        core.dispatch(core.parent_link_id, pkt)
        core.flush()
        for ci in child_inboxes:
            (got,) = drain(ci)
            assert got == pkt

    def test_close_stream_flushes_partials_upstream(self):
        core, parent_inbox, child_inboxes, links = build_node(2, expected=2)
        self.setup_streams(core, links)
        drain(parent_inbox)
        core.dispatch(links[0], Packet(5, 0, "%d", (9,)))
        core.handle_control_down(make_close_stream(5))
        core.flush()
        outs = [p for p in drain(parent_inbox) if p.stream_id == 5]
        assert len(outs) == 1 and outs[0].values == (9,)
        assert 5 not in core.streams
        # Close propagated to children that had the stream.
        for ci in child_inboxes:
            tags = [p.tag for p in drain(ci) if p.stream_id == CONTROL_STREAM_ID]
            assert tags.count(-3) == 1  # TAG_CLOSE_STREAM

    def test_unknown_stream_data_forwards_raw(self):
        core, parent_inbox, child_inboxes, links = build_node(2, expected=2)
        core.dispatch(links[0], make_endpoint_report([0]))
        core.dispatch(links[1], make_endpoint_report([1]))
        drain(parent_inbox)
        # Upstream data on a stream this node never heard of.
        core.dispatch(links[0], Packet(99, 7, "%d", (1,)))
        core.flush()
        (fwd,) = [p for p in drain(parent_inbox) if p.stream_id == 99]
        assert fwd.values == (1,)
        # Downstream data on unknown stream floods to all children.
        core.dispatch(core.parent_link_id, Packet(98, 7, "%d", (2,)))
        core.flush()
        for ci in child_inboxes:
            assert any(p.stream_id == 98 for p in drain(ci))


class TestShutdownAndFailures:
    def test_shutdown_propagates_and_stops(self):
        core, _, child_inboxes, links = build_node(2, expected=2)
        core.handle_control_down(make_shutdown())
        core.flush()
        assert core.shutting_down
        for ci in child_inboxes:
            assert any(p.tag == TAG_SHUTDOWN for p in drain(ci))

    def test_parent_link_death_triggers_shutdown(self):
        core, _, child_inboxes, links = build_node(2, expected=2)
        core.handle_payload(core.parent_link_id, None)  # parent closed
        core.flush()
        assert core.shutting_down
        for ci in child_inboxes:
            assert any(
                p is not None and p.tag == TAG_SHUTDOWN for p in drain(ci)
            )

    def test_child_link_death_releases_backlog(self):
        """A dead child must not wedge Wait-For-All streams."""
        core, parent_inbox, _, links = build_node(2, expected=2)
        core.dispatch(links[0], make_endpoint_report([0]))
        core.dispatch(links[1], make_endpoint_report([1]))
        core.handle_control_down(
            make_new_stream(5, (0, 1), SFILTER_WAITFORALL, TFILTER_SUM)
        )
        drain(parent_inbox)
        core.dispatch(links[0], Packet(5, 0, "%d", (3,)))
        # Child 1 dies before contributing.
        core.handle_payload(links[1], None)
        core.flush()
        outs = [p for p in drain(parent_inbox) if p.stream_id == 5]
        assert len(outs) == 1 and outs[0].values == (3,)
        # Routing forgot the dead link; the stream keeps working with
        # the survivor alone.
        assert links[1] not in core.routing.links
        core.dispatch(links[0], Packet(5, 0, "%d", (4,)))
        core.flush()
        outs = [p for p in drain(parent_inbox) if p.stream_id == 5]
        assert len(outs) == 1 and outs[0].values == (4,)

    def test_flush_skips_closed_channels(self):
        core, parent_inbox, _, links = build_node(1, expected=1)
        core.dispatch(links[0], make_endpoint_report([0]))
        core.parent.close()
        core.flush()  # must not raise
        # Both the close notice and nothing else.
        msgs = drain(parent_inbox)
        assert all(m is None or isinstance(m, Packet) for m in msgs)


class TestStats:
    def test_counters(self):
        core, parent_inbox, _, links = build_node(2, expected=2)
        core.dispatch(links[0], make_endpoint_report([0]))
        core.dispatch(links[1], make_endpoint_report([1]))
        core.handle_control_down(
            make_new_stream(5, (0, 1), SFILTER_DONTWAIT, TFILTER_NULL)
        )
        core.dispatch(links[0], Packet(5, 0, "%d", (1,)))
        core.dispatch(core.parent_link_id, Packet(5, 0, "%d", (2,)))
        core.flush()
        assert core.stats["packets_up"] == 1
        assert core.stats["packets_down"] == 1
        assert core.stats["messages_sent"] >= 1

    def test_batched_payload_roundtrip(self):
        """handle_payload unbatches multi-packet messages."""
        core, parent_inbox, _, links = build_node(1, expected=1)
        core.dispatch(links[0], make_endpoint_report([0]))
        drain(parent_inbox)
        payload = encode_batch(
            [Packet(77, i, "%d", (i,)) for i in range(5)]
        )
        core.handle_payload(links[0], payload)
        core.flush()
        outs = [p for p in drain(parent_inbox) if p.stream_id == 77]
        assert [p.values[0] for p in outs] == [0, 1, 2, 3, 4]
