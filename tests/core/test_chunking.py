"""Unit tests for the chunked-wave framing codec (repro.core.chunking)."""

import numpy as np
import pytest

from repro.core.chunking import (
    CHUNK_PREFIX_FMT,
    ChunkReassembler,
    chunk_meta,
    chunkable_bytes,
    is_chunk,
    reassemble,
    split_packet,
    strip_chunk,
    wrap_chunk,
)
from repro.core.packet import Packet
from repro.core.protocol import TAG_CHUNK


def make_packet(n=1000, fmt="%alf", tag=105, origin=3):
    values = (tuple(float(i) for i in range(n)),)
    return Packet(9, tag, fmt, values, origin_rank=origin)


class TestSplit:
    def test_small_payload_travels_whole(self):
        p = make_packet(4)
        assert split_packet(p, 1 << 20, 0) is None

    def test_disabled_chunking_returns_none(self):
        assert split_packet(make_packet(), 0, 0) is None
        assert split_packet(make_packet(), None, 0) is None

    def test_no_array_payload_never_splits(self):
        p = Packet(9, 100, "%d %s", (1, "x" * 10000))
        assert chunkable_bytes(p) == 0
        assert split_packet(p, 16, 0) is None

    def test_split_fragments_are_chunks(self):
        p = make_packet(1000)  # 8000 payload bytes
        chunks = split_packet(p, 1024, wave_id=5)
        assert chunks is not None and len(chunks) == 8
        for i, c in enumerate(chunks):
            assert is_chunk(c)
            assert c.tag == TAG_CHUNK
            assert c.stream_id == p.stream_id
            assert c.origin_rank == p.origin_rank
            assert chunk_meta(c) == (5, i, 8, p.tag)

    def test_roundtrip_byte_identity(self):
        """split → wire → reassemble reproduces the original exactly."""
        p = make_packet(1000)
        chunks = split_packet(p, 1024, 0)
        # Simulate the wire hop for every fragment.
        wired = [Packet.from_bytes(c.to_bytes()) for c in chunks]
        whole = reassemble(wired)
        assert whole.stream_id == p.stream_id
        assert whole.tag == p.tag
        assert whole.origin_rank == p.origin_rank
        assert whole.values == p.values
        assert whole.to_bytes() == p.to_bytes()

    def test_scalars_replicate_arrays_slice(self):
        arr = tuple(range(100))
        p = Packet(9, 100, "%d %aud %s", (7, arr, "label"))
        chunks = split_packet(p, 128, 0)
        assert chunks is not None and len(chunks) > 1
        for c in chunks:
            inner = strip_chunk(c)
            assert inner.values[0] == 7
            assert inner.values[2] == "label"
        whole = reassemble(chunks)
        assert whole.values == p.values

    def test_uneven_division_loses_nothing(self):
        p = make_packet(997)  # prime length: uneven slices
        chunks = split_packet(p, 1000, 0)
        sizes = [len(strip_chunk(c).values[0]) for c in chunks]
        assert sum(sizes) == 997
        assert reassemble(chunks).values == p.values


class TestStripWrap:
    def test_strip_restores_format_and_tag(self):
        p = make_packet(1000, tag=321)
        c = split_packet(p, 1024, 0)[3]
        inner = strip_chunk(c)
        assert inner.tag == 321
        assert inner.fmt.canonical == p.fmt.canonical

    def test_wrap_reframes_whole_packet(self):
        p = make_packet(100)
        c = wrap_chunk(p, wave_id=2, index=1, n_chunks=4)
        assert is_chunk(c)
        assert chunk_meta(c) == (2, 1, 4, p.tag)
        back = strip_chunk(c)
        assert back.values == p.values
        assert back.tag == p.tag


class TestReassembler:
    def test_in_order_completion(self):
        p = make_packet(1000)
        ra = ChunkReassembler()
        outs = [ra.add(c) for c in split_packet(p, 1024, 0)]
        assert outs[:-1] == [None] * 7
        assert outs[-1].values == p.values
        assert ra.pending == 0
        assert ra.discarded_waves == 0

    def test_restart_discards_stale_partial(self):
        p = make_packet(1000)
        first = split_packet(p, 1024, wave_id=0)
        second = split_packet(p, 1024, wave_id=1)
        ra = ChunkReassembler()
        for c in first[:3]:  # truncated wave (sender died mid-wave)
            assert ra.add(c) is None
        out = None
        for c in second:
            out = ra.add(c)
        assert out is not None and out.values == p.values
        assert ra.discarded_waves == 1

    def test_orphan_tail_dropped(self):
        p = make_packet(1000)
        chunks = split_packet(p, 1024, 0)
        ra = ChunkReassembler()
        assert ra.add(chunks[5]) is None  # start never seen
        assert ra.pending == 0

    def test_empty_reassemble_raises(self):
        with pytest.raises(ValueError):
            reassemble([])


class TestPrefixFormat:
    def test_prefix_field_count_matches(self):
        from repro.core.formats import parse_format

        assert len(parse_format(CHUNK_PREFIX_FMT).fields) == 4

    def test_int_array_dtype_survives(self):
        arr = np.arange(500, dtype=np.int64)
        p = Packet(9, 100, "%ald", (arr,))
        chunks = split_packet(p, 512, 0)
        wired = [Packet.from_bytes(c.to_bytes()) for c in chunks]
        whole = reassemble(wired)
        assert whole.values == (tuple(range(500)),)
