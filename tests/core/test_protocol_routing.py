"""Tests for protocol control packets and the routing table."""

import pytest

from repro.core.packet import Packet
from repro.core.protocol import (
    CONTROL_STREAM_ID,
    TAG_ENDPOINT_REPORT,
    TAG_NEW_STREAM,
    make_close_stream,
    make_endpoint_report,
    make_new_stream,
    make_shutdown,
    parse_new_stream,
)
from repro.core.routing import RoutingTable


class TestControlPackets:
    def test_endpoint_report(self):
        p = make_endpoint_report([3, 1, 2])
        assert p.stream_id == CONTROL_STREAM_ID
        assert p.tag == TAG_ENDPOINT_REPORT
        assert p.values == ((3, 1, 2),)
        assert Packet.from_bytes(p.to_bytes()) == p

    def test_new_stream_roundtrip(self):
        p = make_new_stream(7, [0, 1, 2], 100, 3, sync_timeout=0.25,
                            down_transform_filter_id=5, chunk_bytes=4096,
                            wave_pattern=1)
        assert p.tag == TAG_NEW_STREAM
        sid, eps, sync, trans, timeout, down, chunk, pattern = parse_new_stream(
            Packet.from_bytes(p.to_bytes())
        )
        assert (sid, eps, sync, trans, timeout, down, chunk, pattern) == (
            7, (0, 1, 2), 100, 3, 0.25, 5, 4096, 1,
        )

    def test_new_stream_parse_pads_legacy_fields(self):
        """A 6-field NEW_STREAM from an older peer parses with defaults."""
        p = Packet(
            CONTROL_STREAM_ID, TAG_NEW_STREAM, "%ud %aud %d %d %lf %d",
            (7, (0, 1), 100, 3, 0.0, 0),
        )
        parsed = parse_new_stream(Packet.from_bytes(p.to_bytes()))
        assert parsed[6] == 0  # chunk_bytes defaults off
        assert parsed[7] == 0  # WAVE_REDUCE

    def test_close_and_shutdown(self):
        assert make_close_stream(9).values == (9,)
        assert make_shutdown().stream_id == CONTROL_STREAM_ID


class TestRoutingTable:
    def test_add_and_query(self):
        rt = RoutingTable()
        rt.add_report(10, [0, 1])
        rt.add_report(11, [2, 3])
        assert rt.ranks_behind(10) == {0, 1}
        assert rt.all_ranks() == {0, 1, 2, 3}
        assert rt.link_of(2) == 11

    def test_links_for_intersection(self):
        rt = RoutingTable()
        rt.add_report(10, [0, 1])
        rt.add_report(11, [2, 3])
        rt.add_report(12, [4])
        assert rt.links_for({1, 4}) == [10, 12]
        assert rt.links_for({2}) == [11]
        assert rt.links_for({99}) == []

    def test_links_for_rank_ordered(self):
        """Links come back ordered by smallest reachable rank, not by
        report arrival order — this keeps concatenation rank-ordered."""
        rt = RoutingTable()
        rt.add_report(20, [4, 5])
        rt.add_report(21, [0, 1])
        rt.add_report(22, [2, 3])
        assert rt.links_for({0, 1, 2, 3, 4, 5}) == [21, 22, 20]

    def test_incremental_reports_merge(self):
        rt = RoutingTable()
        rt.add_report(10, [0])
        rt.add_report(10, [1])
        assert rt.ranks_behind(10) == {0, 1}
        assert len(rt) == 1

    def test_remove_link(self):
        rt = RoutingTable()
        rt.add_report(10, [0, 1])
        assert rt.remove_link(10) == {0, 1}
        assert rt.links_for({0}) == []
        assert rt.remove_link(10) == set()

    def test_link_of_unknown_rank(self):
        with pytest.raises(KeyError):
            RoutingTable().link_of(0)

    def test_links_property(self):
        rt = RoutingTable()
        rt.add_report(5, [0])
        rt.add_report(6, [1])
        assert set(rt.links) == {5, 6}
