"""Tests for protocol control packets and the routing table."""

import pytest

from repro.core.packet import Packet
from repro.core.protocol import (
    CONTROL_STREAM_ID,
    TAG_ENDPOINT_REPORT,
    TAG_NEW_STREAM,
    make_close_stream,
    make_endpoint_report,
    make_new_stream,
    make_shutdown,
    parse_new_stream,
)
from repro.core.protocol import (
    TAG_NEW_STREAMS,
    make_new_streams,
    parse_new_streams,
)
from repro.core.routing import RoutingTable


class TestControlPackets:
    def test_endpoint_report(self):
        p = make_endpoint_report([3, 1, 2])
        assert p.stream_id == CONTROL_STREAM_ID
        assert p.tag == TAG_ENDPOINT_REPORT
        assert p.values == ((3, 1, 2),)
        assert Packet.from_bytes(p.to_bytes()) == p

    def test_new_stream_roundtrip(self):
        p = make_new_stream(7, [0, 1, 2], 100, 3, sync_timeout=0.25,
                            down_transform_filter_id=5, chunk_bytes=4096,
                            wave_pattern=1)
        assert p.tag == TAG_NEW_STREAM
        sid, eps, sync, trans, timeout, down, chunk, pattern = parse_new_stream(
            Packet.from_bytes(p.to_bytes())
        )
        assert (sid, eps, sync, trans, timeout, down, chunk, pattern) == (
            7, (0, 1, 2), 100, 3, 0.25, 5, 4096, 1,
        )

    def test_new_stream_parse_pads_legacy_fields(self):
        """A 6-field NEW_STREAM from an older peer parses with defaults."""
        p = Packet(
            CONTROL_STREAM_ID, TAG_NEW_STREAM, "%ud %aud %d %d %lf %d",
            (7, (0, 1), 100, 3, 0.0, 0),
        )
        parsed = parse_new_stream(Packet.from_bytes(p.to_bytes()))
        assert parsed[6] == 0  # chunk_bytes defaults off
        assert parsed[7] == 0  # WAVE_REDUCE

    def test_close_and_shutdown(self):
        assert make_close_stream(9).values == (9,)
        assert make_shutdown().stream_id == CONTROL_STREAM_ID

    def test_new_streams_batch_roundtrip(self):
        """TAG_NEW_STREAMS ships N specs + deduplicated groups once."""
        groups = [(0, 1, 2, 3), (0, 2)]
        specs = [
            (7, 0, 100, 3, 0.25, 5, 4096, 1),
            (8, 0, 100, 0, 0.0, 0, 0, 0),
            (9, 1, 101, 3, 1.5, 0, 0, 0),
        ]
        p = make_new_streams(groups, specs)
        assert p.stream_id == CONTROL_STREAM_ID
        assert p.tag == TAG_NEW_STREAMS
        got_groups, got_specs = parse_new_streams(
            Packet.from_bytes(p.to_bytes())
        )
        assert got_groups == [(0, 1, 2, 3), (0, 2)]
        assert got_specs == specs


class TestRoutingTable:
    def test_add_and_query(self):
        rt = RoutingTable()
        rt.add_report(10, [0, 1])
        rt.add_report(11, [2, 3])
        assert rt.ranks_behind(10) == {0, 1}
        assert rt.all_ranks() == {0, 1, 2, 3}
        assert rt.link_of(2) == 11

    def test_links_for_intersection(self):
        rt = RoutingTable()
        rt.add_report(10, [0, 1])
        rt.add_report(11, [2, 3])
        rt.add_report(12, [4])
        assert rt.links_for({1, 4}) == [10, 12]
        assert rt.links_for({2}) == [11]
        assert rt.links_for({99}) == []

    def test_links_for_rank_ordered(self):
        """Links come back ordered by smallest reachable rank, not by
        report arrival order — this keeps concatenation rank-ordered."""
        rt = RoutingTable()
        rt.add_report(20, [4, 5])
        rt.add_report(21, [0, 1])
        rt.add_report(22, [2, 3])
        assert rt.links_for({0, 1, 2, 3, 4, 5}) == [21, 22, 20]

    def test_incremental_reports_merge(self):
        rt = RoutingTable()
        rt.add_report(10, [0])
        rt.add_report(10, [1])
        assert rt.ranks_behind(10) == {0, 1}
        assert len(rt) == 1

    def test_remove_link(self):
        rt = RoutingTable()
        rt.add_report(10, [0, 1])
        assert rt.remove_link(10) == {0, 1}
        assert rt.links_for({0}) == []
        assert rt.remove_link(10) == set()

    def test_link_of_unknown_rank(self):
        with pytest.raises(KeyError):
            RoutingTable().link_of(0)

    def test_links_property(self):
        rt = RoutingTable()
        rt.add_report(5, [0])
        rt.add_report(6, [1])
        assert set(rt.links) == {5, 6}


class TestGroupRouteCache:
    """The epoch-keyed CommGroup cache must be invisible: cached
    lookups byte-identical to the uncached intersection scan through
    every kind of topology churn (the PR acceptance invariant)."""

    GROUPS = [
        frozenset({0, 1, 2, 3, 4, 5}),
        frozenset({0, 5}),
        frozenset({2}),
        frozenset({1, 3}),
        frozenset({7, 8}),  # partially / wholly unroutable
    ]

    def assert_cache_transparent(self, rt):
        for eps in self.GROUPS:
            assert rt.links_for(eps) == rt._compute_links(eps), (
                f"cached routes diverged for {sorted(eps)} "
                f"at epoch {rt.epoch}"
            )

    def test_cached_routes_identical_through_churn(self):
        rt = RoutingTable()
        mutations = [
            lambda: rt.add_report(10, [0, 1]),
            lambda: rt.add_report(11, [2, 3]),
            lambda: rt.add_report(12, [4, 5]),
            lambda: rt.add_report(10, [7]),     # incremental merge
            lambda: rt.remove_rank(3),          # graceful leave
            lambda: rt.remove_link(11),         # link death
            lambda: rt.add_report(13, [2, 3]),  # repair elsewhere
            lambda: rt.remove_rank(0),
            lambda: rt.add_report(10, [0]),     # rejoin
        ]
        self.assert_cache_transparent(rt)  # empty-table baseline
        for mutate in mutations:
            mutate()
            self.assert_cache_transparent(rt)
            # Double-read at the same epoch serves the cache; it must
            # still match (and not have been corrupted by the caller's
            # mutable copy).
            first = rt.links_for(self.GROUPS[0])
            first.append(999)
            assert 999 not in rt.links_for(self.GROUPS[0])

    def test_epoch_bumps_only_on_real_change(self):
        rt = RoutingTable()
        rt.add_report(10, [0, 1])
        epoch = rt.epoch
        rt.add_report(10, [0, 1])  # no new ranks
        assert rt.epoch == epoch
        rt.remove_rank(99)         # unknown rank
        assert rt.epoch == epoch
        rt.remove_link(99)         # unknown link
        assert rt.epoch == epoch
        rt.add_report(10, [2])
        assert rt.epoch == epoch + 1

    def test_group_interning_shares_one_object(self):
        rt = RoutingTable()
        rt.add_report(10, [0, 1])
        a = rt.group({0, 1})
        b = rt.group(frozenset({0, 1}))
        assert a is b
        assert a.endpoints == frozenset({0, 1})

    def test_stale_group_recomputes_lazily(self):
        rt = RoutingTable()
        rt.add_report(10, [0, 1])
        grp = rt.group({0, 1, 2})
        assert rt.links_for_group(grp) == [10]
        rt.add_report(11, [2])
        # The epoch moved; the next lookup recomputes transparently.
        assert grp._routes_epoch != rt.epoch
        assert rt.links_for_group(grp) == [10, 11]
        assert grp._routes_epoch == rt.epoch

    def test_reverse_index_consistent_through_churn(self):
        """link_of answers from the O(1) reverse index; it must agree
        with a scan over the reach sets after every mutation."""
        rt = RoutingTable()

        def assert_index_matches_scan():
            scan = {}
            for link, ranks in rt._reach.items():
                for r in ranks:
                    scan.setdefault(r, set()).add(link)
            for rank, links in scan.items():
                assert rt.link_of(rank) in links
            for rank in {0, 1, 2, 3, 4} - set(scan):
                with pytest.raises(KeyError):
                    rt.link_of(rank)

        rt.add_report(10, [0, 1])
        assert_index_matches_scan()
        rt.add_report(11, [2, 3])
        assert_index_matches_scan()
        rt.remove_link(10)
        assert_index_matches_scan()
        rt.remove_rank(2)
        assert_index_matches_scan()
        rt.add_report(12, [0, 2])
        assert_index_matches_scan()
