"""Unit tests for format-string parsing."""

import pytest

from repro.core.formats import (
    FieldSpec,
    FormatError,
    FormatString,
    TypeCode,
    parse_format,
)


class TestParsing:
    def test_single_int(self):
        fmt = parse_format("%d")
        assert len(fmt) == 1
        assert fmt.fields[0] == FieldSpec(TypeCode.INT32, False)

    def test_paper_example(self):
        """The paper's example: '%d %f %s' is int, float, string."""
        fmt = parse_format("%d %f %s")
        assert [f.code for f in fmt] == [
            TypeCode.INT32,
            TypeCode.FLOAT32,
            TypeCode.STRING,
        ]
        assert not any(f.is_array for f in fmt)

    def test_all_scalars(self):
        fmt = parse_format("%c %d %ud %ld %uld %f %lf %s %b")
        codes = [f.code for f in fmt]
        assert codes == [
            TypeCode.CHAR,
            TypeCode.INT32,
            TypeCode.UINT32,
            TypeCode.INT64,
            TypeCode.UINT64,
            TypeCode.FLOAT32,
            TypeCode.FLOAT64,
            TypeCode.STRING,
            TypeCode.BYTES,
        ]

    def test_arrays(self):
        fmt = parse_format("%ad %af %as %auld")
        assert all(f.is_array for f in fmt)
        assert [f.code for f in fmt] == [
            TypeCode.INT32,
            TypeCode.FLOAT32,
            TypeCode.STRING,
            TypeCode.UINT64,
        ]

    def test_whitespace_insensitive(self):
        assert parse_format("%d%f") == parse_format("  %d   %f ")

    def test_canonical_form(self):
        assert parse_format("%d%af  %s").canonical == "%d %af %s"

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "%", "%x", "%dd", "%ab", "%aa", "d", "%d junk", "%d %"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(FormatError):
            FormatString(bad)

    def test_rejects_non_string(self):
        with pytest.raises(FormatError):
            FormatString(42)  # type: ignore[arg-type]

    def test_longest_match_uld(self):
        fmt = parse_format("%uld")
        assert fmt.fields[0].code is TypeCode.UINT64

    def test_equality_and_hash(self):
        a = parse_format("%d %f")
        b = FormatString("%d    %f")
        assert a == b
        assert hash(a) == hash(b)
        assert a == "%d %f"
        assert a != parse_format("%f %d")

    def test_cache_returns_same_object(self):
        assert parse_format("%d %s") is parse_format("%d %s")

    def test_spec_roundtrip(self):
        for text in ["%d", "%ad", "%uld", "%auld", "%s", "%as", "%lf %c %b"]:
            fmt = parse_format(text)
            assert parse_format(fmt.canonical) == fmt


class TestTypeCode:
    def test_integral_bounds(self):
        assert TypeCode.INT32.bounds == (-(2**31), 2**31 - 1)
        assert TypeCode.UINT32.bounds == (0, 2**32 - 1)
        assert TypeCode.CHAR.bounds == (0, 255)
        assert TypeCode.FLOAT64.bounds is None

    def test_struct_char_for_strings_raises(self):
        with pytest.raises(FormatError):
            TypeCode.STRING.struct_char
        with pytest.raises(FormatError):
            TypeCode.BYTES.struct_char

    def test_classification(self):
        assert TypeCode.INT64.is_integral and not TypeCode.INT64.is_float
        assert TypeCode.FLOAT32.is_float and not TypeCode.FLOAT32.is_integral
        assert not TypeCode.STRING.is_integral and not TypeCode.STRING.is_float
