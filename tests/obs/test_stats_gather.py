"""STATS_SNAPSHOT gather tests: key schema, wire pull path, and
behaviour under an in-flight wave and a mid-run node kill."""

import json
import re

import pytest

from repro.core import REPAIR, Network
from repro.faultinject import FaultInjector
from repro.filters.registry import SFILTER_WAITFORALL, TFILTER_SUM
from repro.obs.snapshot import STATS_SCHEMA
from repro.topology import balanced_tree

from ..fault.conftest import drive_wave, shutdown_nets, wait_until  # noqa: F401

TOPO = "fe:0 => cn:0 cn:1 ; cn:0 => be:0 be:1 ; cn:1 => be:2 be:3 ;"

RANK_KEY = re.compile(r"^\d+:")


def _process_keys(stats):
    """The uniform ``rank:hostname`` process keys of a stats() result."""
    return {k for k in stats if RANK_KEY.match(k)}


def _new_sum_stream(net):
    return net.new_stream(
        net.get_broadcast_communicator(),
        transform=TFILTER_SUM,
        sync=SFILTER_WAITFORALL,
    )


class TestStatsKeys:
    def test_uniform_rank_keys_without_deprecated_aliases(self, shutdown_nets):
        net = Network(TOPO, transport="local")
        shutdown_nets.append(net)
        s = net.stats()

        keys = _process_keys(s)
        assert "0:front-end" in keys
        assert len(keys) == 3  # front-end + two comm nodes

        # The bare-label aliases deprecated in PR 4 were removed one
        # release later: processes appear ONLY under rank:hostname.
        assert "front-end" not in s
        for identity in keys:
            bare = identity.split(":", 1)[1]
            assert bare not in s

    def test_meta_block(self, shutdown_nets):
        net = Network(TOPO, transport="local")
        shutdown_nets.append(net)
        meta = net.stats()["meta"]
        assert meta["schema"] == STATS_SCHEMA
        assert meta["transport"] == "local"
        assert meta["gathered"] is True
        assert meta["replies"] == meta["expected"] == 2

    def test_gather_false_skips_the_wire(self, shutdown_nets):
        net = Network(TOPO, transport="local")
        shutdown_nets.append(net)
        s = net.stats(gather=False)
        meta = s["meta"]
        assert meta["gathered"] is False and meta["replies"] == 0
        # Thread-hosted registries are still readable in-process.
        assert len(_process_keys(s)) == 3

    def test_per_stream_series_and_histograms(self, shutdown_nets):
        net = Network(TOPO, transport="local")
        shutdown_nets.append(net)
        stream = _new_sum_stream(net)
        assert drive_wave(net, stream, value=2).values == (8,)

        s = net.stats()
        sid = stream.stream_id
        for key in _process_keys(s) - {"0:front-end"}:
            proc = s[key]
            assert proc[f'waves_released{{filter="sum",stream="{sid}"}}'] == 1
            assert proc[f'membership_epoch{{stream="{sid}"}}'] == 0
            hists = proc["histograms"]
            assert f'wave_latency_seconds{{stream="{sid}"}}' in hists
            assert hists["flush_batch_packets"]["count"] > 0


class TestGatherDuringWave:
    def test_snapshot_completes_while_wave_waits(self, shutdown_nets):
        """A WaitForAll wave parked in the sync filters must not block
        the control-stream gather (the pull path and the data path are
        independent, §2.3)."""
        net = Network(TOPO, transport="local")
        shutdown_nets.append(net)
        stream = _new_sum_stream(net)

        stream.send("%d", 0)
        net.flush()
        # One backend per comm node replies; each comm node's
        # Wait-For-All filter now holds a half wave.
        for rank in (0, 2):
            be = net.backends[rank]
            pkt, bstream = be.recv(timeout=5)
            bstream.send("%d", 10, tag=pkt.tag)
            be.flush()

        s = net.stats()
        assert s["meta"]["replies"] == s["meta"]["expected"] == 2
        sid = stream.stream_id
        wave_key = f'waves_released{{filter="sum",stream="{sid}"}}'
        for key in _process_keys(s) - {"0:front-end"}:
            assert s[key][wave_key] == 0  # still waiting, not disturbed

        # The gather did not consume or release the wave: finish it.
        for rank in (1, 3):
            be = net.backends[rank]
            pkt, bstream = be.recv(timeout=5)
            bstream.send("%d", 10, tag=pkt.tag)
            be.flush()
        assert stream.recv(timeout=5).values == (40,)
        s = net.stats()
        for key in _process_keys(s) - {"0:front-end"}:
            assert s[key][wave_key] == 1


class TestGatherAcrossFailure:
    def test_dead_node_absent_survivors_labelled(self, shutdown_nets):
        """Kill a comm node under the repair policy: its identity
        disappears from stats() (a dead process has no counters) while
        every survivor still reports, per-stream labels intact."""
        net = Network(balanced_tree(4, 2), transport="tcp", policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream).values == (16,)

        before = _process_keys(net.stats())
        assert len(before) == 5  # front-end + four comm nodes

        FaultInjector(net).kill_commnode(0)
        assert wait_until(
            lambda: net.stats()["recovery"]["orphans_adopted"] >= 4,
            net=net,
            timeout=5.0,
        )

        s = net.stats()
        after = _process_keys(s)
        dead = before - after
        assert len(dead) == 1, f"exactly one identity should vanish: {dead}"
        assert s["meta"]["replies"] == s["meta"]["expected"] == 3

        sid = stream.stream_id
        epoch_key = f'membership_epoch{{stream="{sid}"}}'
        survivors = after - {"0:front-end"}
        assert len(survivors) == 3
        for key in survivors:
            assert epoch_key in s[key]
        # Somebody's wave membership changed: the adopter (or the
        # front-end, if it adopted the orphans directly) bumped.
        epochs = [s[key].get(epoch_key, 0) for key in after]
        assert max(epochs) > 0


class TestStatsExports:
    def test_stats_json_document_shape(self, shutdown_nets):
        net = Network(TOPO, transport="local")
        shutdown_nets.append(net)
        stream = _new_sum_stream(net)
        drive_wave(net, stream)

        doc = json.loads(net.stats_json())
        assert doc["meta"]["schema"] == STATS_SCHEMA
        procs = doc["processes"]
        assert set(procs) == _process_keys(net.stats())
        for snap in procs.values():
            assert set(snap) == {"counters", "gauges", "histograms"}
        assert "recovery" in doc

    def test_stats_prometheus_exposition(self, shutdown_nets):
        net = Network(TOPO, transport="local")
        shutdown_nets.append(net)
        stream = _new_sum_stream(net)
        drive_wave(net, stream)

        text = net.stats_prometheus()
        assert '# TYPE mrnet_packets_in counter' in text
        assert 'process="0:front-end"' in text
        # Per-stream labels survive into the exposition, merged with
        # the process label.
        assert f'stream="{stream.stream_id}"' in text
        assert 'mrnet_wave_latency_seconds_bucket' in text
        assert 'le="+Inf"' in text
        assert 'process="recovery"' in text


class TestProcessTransportGather:
    def test_wire_gather_reaches_separate_processes(self, shutdown_nets):
        """On the process transport the wire pull is the *only* way to
        see internal-node counters; gather=False shows just the
        front-end."""
        net = Network(balanced_tree(2, 2), transport="process")
        shutdown_nets.append(net)

        local = net.stats(gather=False)
        assert _process_keys(local) == {"0:front-end"}

        s = net.stats(timeout=10.0)
        meta = s["meta"]
        assert meta["gathered"] is True
        assert meta["replies"] == meta["expected"] == 2
        keys = _process_keys(s)
        assert len(keys) == 3
        for key in keys - {"0:front-end"}:
            assert s[key]["packets_in"] >= 0
