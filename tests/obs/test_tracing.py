"""Tracing tests: TraceRecorder unit behaviour plus a live traced run.

The live test is the PR's acceptance check: a 2-level tree run with
``trace=True`` must produce a Perfetto-loadable Chrome trace containing
every Figure 3 stage (recv, demux, sync_wait, filter, rebatch, send).
"""

import json

import pytest

from repro.filters.registry import SFILTER_WAITFORALL, TFILTER_SUM
from repro.obs.tracing import STAGE_TRACKS, STAGES, TraceRecorder, to_chrome_trace


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


class TestTraceRecorder:
    def test_span_start_end_records_with_clock(self):
        clk = FakeClock()
        rec = TraceRecorder("test", clock=clk)
        t0 = rec.span_start()
        clk.t += 0.5
        rec.span_end("recv", t0, stream_id=3, detail="n=8")
        assert rec.spans() == [("recv", 100.0, 100.5, 3, "n=8")]

    def test_one_shot_span_and_clear(self):
        rec = TraceRecorder("test", clock=FakeClock())
        rec.span("sync_wait", 1.0, 2.0, 5)
        assert len(rec) == 1
        rec.clear()
        assert rec.spans() == []

    def test_ring_is_bounded(self):
        rec = TraceRecorder("test", maxlen=4, clock=FakeClock())
        for i in range(10):
            rec.span("recv", i, i + 0.1)
        spans = rec.spans()
        assert len(spans) == 4
        assert spans[0][1] == 6  # oldest surviving span

    def test_every_stage_has_a_track(self):
        assert set(STAGE_TRACKS) == set(STAGES)


class TestChromeExport:
    def test_event_schema(self):
        clk = FakeClock(50.0)
        a = TraceRecorder("1:cn", clock=clk)
        clk.t = 51.0
        b = TraceRecorder("0:fe", clock=clk)
        a.span("recv", 50.2, 50.3, 0, "n=2")
        b.span("filter", 51.1, 51.4, 7)
        doc = json.loads(to_chrome_trace([a, b]))
        events = doc["traceEvents"]

        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert names == {"1:cn", "0:fe"}
        # Named tracks (io, waves, pipeline) per process.
        tracks = [e for e in meta if e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in tracks} == {"io", "waves", "pipeline"}

        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        recv = complete["recv"]
        # ts is relative to the earliest epoch (a's, at t=50), in µs.
        assert recv["ts"] == pytest.approx((50.2 - 50.0) * 1e6)
        assert recv["dur"] == pytest.approx(0.1 * 1e6)
        assert recv["tid"] == 1 and recv["args"] == {"stream": 0, "detail": "n=2"}
        filt = complete["filter"]
        assert filt["tid"] == 2 and filt["args"] == {"stream": 7}
        # Distinct processes get distinct pids.
        assert recv["pid"] != filt["pid"]

    def test_zero_duration_span_stays_visible(self):
        rec = TraceRecorder("x", clock=FakeClock())
        rec.span("send", 1.0, 1.0)
        (event,) = [
            e
            for e in json.loads(to_chrome_trace([rec]))["traceEvents"]
            if e["ph"] == "X"
        ]
        assert event["dur"] > 0


TOPO = "fe:0 => cn:0 cn:1 ; cn:0 => be:0 be:1 ; cn:1 => be:2 be:3 ;"


@pytest.fixture
def traced_net():
    from repro.core.network import Network

    net = Network(TOPO, transport="local", trace=True)
    yield net
    net.shutdown()


def _run_sum_wave(net, value=7):
    comm = net.get_broadcast_communicator()
    st = net.new_stream(comm, transform=TFILTER_SUM, sync=SFILTER_WAITFORALL)
    st.send("%d", value)
    for be in net.backends.values():
        pkt, s = be.recv(timeout=5)
        s.send("%d", pkt.raw_values[0] * 2, tag=pkt.tag)
        be.flush()
    pkt = st.recv(timeout=5)
    return pkt.raw_values[0]


class TestLiveTrace:
    def test_all_figure3_stages_recorded(self, traced_net):
        assert _run_sum_wave(traced_net) == 4 * 7 * 2
        # pipeline_fill only fires on a chunked incremental wave.
        comm = traced_net.get_broadcast_communicator()
        st = traced_net.new_stream(comm, transform=TFILTER_SUM, chunk_bytes=1024)
        st.send("%d", 0)
        for be in traced_net.backends.values():
            pkt, s = be.recv(timeout=5)
            s.send("%alf", tuple(float(i) for i in range(1024)))
        st.recv(timeout=5)
        doc = json.loads(traced_net.trace_chrome_json())
        events = doc["traceEvents"]
        seen = {e["name"] for e in events if e["ph"] == "X"}
        missing = set(STAGES) - seen
        assert not missing, f"Figure 3 stages never traced: {sorted(missing)}"

        procs = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "0:front-end" in procs
        assert len(procs) == 3  # front-end + two comm nodes

        for e in events:
            if e["ph"] != "X":
                continue
            assert e["ts"] >= 0 and e["dur"] > 0
            assert "stream" in e["args"]

    def test_sync_wait_and_filter_land_on_wave_track(self, traced_net):
        _run_sum_wave(traced_net)
        events = json.loads(traced_net.trace_chrome_json())["traceEvents"]
        by_name = {}
        for e in events:
            if e["ph"] == "X":
                by_name.setdefault(e["name"], []).append(e)
        assert all(e["tid"] == 2 for e in by_name["sync_wait"])
        assert all(e["tid"] == 2 for e in by_name["filter"])
        assert all(e["tid"] == 1 for e in by_name["recv"])
        # The comm nodes' filter spans carry the transform name.
        assert any(e["args"].get("detail") == "sum" for e in by_name["filter"])

    def test_stop_trace_freezes_recording(self, traced_net):
        _run_sum_wave(traced_net)
        traced_net.stop_trace()
        before = len(json.loads(traced_net.trace_chrome_json())["traceEvents"])
        _run_sum_wave(traced_net, value=3)
        after = len(json.loads(traced_net.trace_chrome_json())["traceEvents"])
        assert after == before

    def test_write_trace(self, traced_net, tmp_path):
        _run_sum_wave(traced_net)
        out = traced_net.write_trace(tmp_path / "trace.json")
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]


class TestTraceLifecycle:
    def test_trace_requires_thread_hosted_transport(self):
        from repro.core.network import Network, NetworkError

        with pytest.raises(NetworkError):
            Network(TOPO, transport="process", trace=True)

    def test_double_start_rejected(self):
        from repro.core.network import Network, NetworkError

        net = Network(TOPO, transport="local")
        try:
            net.start_trace()
            with pytest.raises(NetworkError):
                net.start_trace()
        finally:
            net.shutdown()

    def test_chrome_json_without_trace_rejected(self):
        from repro.core.network import Network, NetworkError

        net = Network(TOPO, transport="local")
        try:
            with pytest.raises(NetworkError):
                net.trace_chrome_json()
        finally:
            net.shutdown()
