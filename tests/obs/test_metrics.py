"""Unit tests for the typed metrics layer (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
    parse_key,
    prometheus_text,
    render_key,
)
from repro.obs.snapshot import STATS_SCHEMA, dumps_snapshot, loads_snapshot


class TestSeriesKeys:
    def test_plain_name_round_trips(self):
        assert render_key("packets_in", {}) == "packets_in"
        assert parse_key("packets_in") == ("packets_in", {})

    def test_labels_render_sorted_and_parse_back(self):
        key = render_key("waves_released", {"stream": 5, "filter": "sum"})
        assert key == 'waves_released{filter="sum",stream="5"}'
        assert parse_key(key) == (
            "waves_released",
            {"filter": "sum", "stream": "5"},
        )


class TestCounter:
    def test_inc_and_direct_value(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        c.value += 1
        assert c.value == 6

    def test_registry_memoizes_by_series(self):
        reg = MetricsRegistry()
        a = reg.counter("packets", stream=1)
        b = reg.counter("packets", stream=1)
        c = reg.counter("packets", stream=2)
        assert a is b
        assert a is not c


class TestGauge:
    def test_set_and_arithmetic(self):
        g = Gauge("depth")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2

    def test_callback_gauge_reads_live_state(self):
        items = [1, 2]
        g = Gauge("n", fn=lambda: len(items))
        assert g.value == 2
        items.append(3)
        assert g.value == 3

    def test_broken_callback_degrades_to_last_set(self):
        g = Gauge("n", fn=lambda: 1 / 0)
        assert g.value == 0.0


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        d = h.to_dict()
        # Raw per-bucket counts (non-cumulative), +Inf last.
        assert d["counts"] == [1, 1, 1, 1]
        assert d["count"] == 4
        assert d["sum"] == pytest.approx(5.555)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 0.1))

    def test_default_latency_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestStatsView:
    """The legacy ``core.stats`` mapping semantics over a registry."""

    def test_read_write_and_default(self):
        reg = MetricsRegistry()
        view = StatsView(reg)
        view["packets_in"] = 0  # setitem creates the counter on demand
        view["packets_in"] += 3
        assert view["packets_in"] == 3
        assert view.get("missing", 7) == 7
        with pytest.raises(KeyError):
            view["missing"]

    def test_iterates_unlabelled_counters_only(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc()
        reg.counter("labelled", stream=1).inc()
        view = StatsView(reg)
        assert set(view) == {"plain"}
        assert "labelled" not in list(view)


class TestSnapshotWire:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("x", stream=9).inc(5)
        reg.histogram("lat").observe(0.01)
        doc = loads_snapshot(dumps_snapshot("3:leaf-1", 3, reg.snapshot()))
        assert doc["node"] == "3:leaf-1"
        assert doc["rank"] == 3
        assert doc["metrics"]["counters"]['x{stream="9"}'] == 5

    def test_bad_payloads_return_none(self):
        assert loads_snapshot("not json") is None
        assert loads_snapshot(json.dumps({"schema": "other/9"})) is None
        assert loads_snapshot(json.dumps({"schema": STATS_SCHEMA})) is None


class TestPrometheusText:
    def test_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("packets_in", "Inbound packets").inc(2)
        reg.counter("waves", stream=1).inc()
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        text = prometheus_text(
            {"0:front-end": reg.snapshot()},
            helps={"packets_in": "Inbound packets"},
        )
        assert "# HELP mrnet_packets_in Inbound packets" in text
        assert "# TYPE mrnet_packets_in counter" in text
        assert 'mrnet_packets_in{process="0:front-end"} 2' in text
        # Histogram buckets are cumulative with an +Inf terminator.
        assert 'le="0.1"' in text and 'le="+Inf"' in text
        assert "mrnet_lat_sum" in text and "mrnet_lat_count" in text

    def test_works_from_snapshot_dicts(self):
        """The exporter must accept wire snapshots, not live objects."""
        reg = MetricsRegistry()
        reg.counter("x").inc()
        snap = json.loads(json.dumps(reg.snapshot()))  # plain JSON data
        text = prometheus_text({"1:cn": snap})
        assert 'mrnet_x{process="1:cn"} 1' in text
