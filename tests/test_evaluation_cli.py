"""Tests for the evaluation module and the ``python -m repro`` CLI."""

import pytest

from repro.evaluation import (
    fig4_topologies,
    fig7a_instantiation,
    fig7b_roundtrip,
    fig7c_throughput,
    fig8a_startup,
    fig8b_activities,
    fig9_frontend_load,
    skew_accuracy,
)


class TestEvaluationFunctions:
    def test_fig7a_shape(self):
        header, rows = fig7a_instantiation(backends=[4, 64])
        assert header[0] == "back-ends"
        assert [r[0] for r in rows] == [4, 64]
        assert all(len(r) == len(header) for r in rows)

    def test_fig7b_shape(self):
        header, rows = fig7b_roundtrip(backends=[8])
        assert len(rows) == 1 and rows[0][0] == 8

    def test_fig7c_shape(self):
        header, rows = fig7c_throughput(backends=[8], waves=10)
        assert rows[0][1] > 0

    def test_fig8a_shape(self):
        header, rows = fig8a_startup(daemons=[4, 16])
        assert len(header) == 5
        assert rows[0][1] > 0

    def test_fig8b_totals_row(self):
        header, rows = fig8b_activities(daemons=64)
        assert rows[-1][0] == "TOTAL"
        assert rows[-1][1] == pytest.approx(sum(r[1] for r in rows[:-1]))

    def test_fig9_panels(self):
        panels = fig9_frontend_load(daemons=[4, 64], metrics=[1, 32])
        assert set(panels) == {1, 32}
        header, rows = panels[32]
        assert header[-1] == "offered/s"
        assert rows[1][-1] == 5 * 64 * 32

    def test_fig4(self):
        header, rows = fig4_topologies()
        names = [r[0] for r in rows]
        assert names == ["balanced-4a", "unbalanced-4b"]

    def test_skew(self):
        header, rows = skew_accuracy(seeds=[0, 1])
        assert rows[-1][0] == "mean"
        assert len(rows) == 3


class TestCli:
    def test_figures_subset(self, capsys, tmp_path):
        from repro.__main__ import main

        assert main(["figures", "fig4", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert (tmp_path / "fig4.txt").exists()

    def test_figures_unknown_id(self, capsys):
        from repro.__main__ import main

        assert main(["figures", "fig99"]) == 2

    def test_demo(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_topology(self, capsys, tmp_path):
        from repro.__main__ import main

        hostfile = tmp_path / "hosts"
        hostfile.write_text("\n".join(f"n{i}" for i in range(20)))
        assert main(["topology", str(hostfile), "--fanout", "4",
                     "--backends", "12"]) == 0
        out = capsys.readouterr().out
        from repro.topology import parse_config

        assert parse_config(out).num_backends == 12
