"""Liveness probing: wedged-but-connected peers must be detected.

A crashed process closes its sockets — EOF is the detector.  A
*wedged* process keeps its connections open and processes nothing;
only the heartbeat deadline catches that.  Probing is strictly
pairwise-consensual: a node applies the silence deadline only to
links whose peer has itself probed, so passive peers (back-ends, the
front-end) are never falsely declared dead.
"""

import time

import pytest

from repro.core import DEGRADE, Network
from repro.faultinject import FaultInjector
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree

from .conftest import drive_wave, wait_until

WAVE_TIMEOUT = 10.0
INTERVAL = 0.05


def heartbeat_net(shutdown_nets, depth=3, fanout=2, **kwargs):
    net = Network(
        balanced_tree(fanout, depth),
        transport="tcp",
        heartbeat_interval=INTERVAL,
        heartbeat_miss_threshold=3,
        **kwargs,
    )
    shutdown_nets.append(net)
    return net


class TestWedgeDetection:
    def test_wedged_node_declared_dead_by_parent(self, shutdown_nets):
        """Depth-3 tree so comm nodes probe each other; wedging a
        level-2 node leaves its sockets open, yet its parent's
        deadline fires and the front-end learns which ranks died."""
        net = heartbeat_net(shutdown_nets)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (8,)

        # Let probes establish the mutual-monitoring sets.
        time.sleep(4 * INTERVAL)
        inj = FaultInjector(net)
        # Last-built comm node is on the deepest internal level; its
        # parent is another comm node (not the passive front-end).
        label = inj.commnode_labels()[-1]
        inj.wedge_commnode(label)

        assert wait_until(
            lambda: any(e.lost for e in net.recovery_events()),
            net=net,
            timeout=8.0,
        ), "wedged node was never declared dead"
        lost = set()
        for event in net.recovery_events():
            lost.update(event.lost)
        assert len(lost) == 2  # the wedged node's two back-ends
        missed = sum(
            s.get("heartbeats_missed", 0)
            for name, s in net.stats().items()
            if name != "recovery"
        )
        assert missed >= 1
        # Survivors keep working.
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (6,)

    def test_wedged_node_stops_probing(self, shutdown_nets):
        net = heartbeat_net(shutdown_nets, depth=2)
        time.sleep(4 * INTERVAL)
        inj = FaultInjector(net)
        core = inj.commnode(0).core
        inj.wedge_commnode(0)
        sent = core.stats["heartbeats_sent"]
        time.sleep(4 * INTERVAL)
        assert core.stats["heartbeats_sent"] == sent


class TestHeartbeatJitter:
    def test_probe_schedules_stay_in_band_and_desync(self, shutdown_nets):
        """Probe emission is jittered ±20% around the base interval
        with a name-seeded generator: every draw stays inside the
        band, and distinct nodes draw distinct schedules, so a large
        tree's probe bursts never align into a thundering herd.  The
        *detection* deadline is never jittered."""
        net = heartbeat_net(shutdown_nets, depth=3)
        assert net.heartbeat.jitter == pytest.approx(0.2)
        assert net.heartbeat.deadline == pytest.approx(3 * INTERVAL)

        schedules = []
        for node in net._commnodes:
            seq = tuple(node.core._draw_hb_interval() for _ in range(8))
            for interval in seq:
                assert 0.8 * INTERVAL - 1e-9 <= interval <= 1.2 * INTERVAL + 1e-9
            schedules.append(seq)
        # De-sync: six nodes, six different schedules (per-name seeds
        # are deterministic across runs but never shared across nodes).
        assert len(set(schedules)) == len(schedules)


class TestNoFalsePositives:
    def test_passive_peers_survive_long_silence(self, shutdown_nets):
        """Back-ends and the front-end never probe, so an idle network
        with heartbeats on must not declare anyone dead."""
        net = heartbeat_net(shutdown_nets, depth=2)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)
        # Far past the deadline (3 * INTERVAL) with all tool threads idle.
        time.sleep(10 * INTERVAL)
        assert net.stats()["recovery"]["heartbeats_missed"] == 0
        assert not any(e.lost for e in net.recovery_events())
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

    def test_heartbeats_disabled_by_default(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        assert not net.heartbeat.enabled
        time.sleep(0.2)
        assert all(
            s.get("heartbeats_sent", 0) == 0
            for name, s in net.stats().items()
            if name != "recovery"
        )
