"""Fault suite over the colocated runtime (one loop, inproc links).

A colocated tree keeps every comm node on ONE shared event loop, with
comm-to-comm edges on in-process deque links.  Failure semantics must
be indistinguishable from the one-thread-per-node runtime: a killed
core's links EOF (frames before ``None``), survivors on the SAME loop
keep running, waves shrink under ``degrade``, orphans re-attach under
``repair``, and ``fail_fast`` poisons the front-end.
"""

import time

import pytest

from repro.core import DEGRADE, FAIL_FAST, REPAIR, Network, NetworkDownError
from repro.faultinject import FaultInjector
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree

from .conftest import drive_wave, poll_backends, wait_until

WAVE_TIMEOUT = 10.0


def inproc_commnodes(net):
    """The colocated comm nodes whose PARENT edge is an inproc link."""
    return [
        n for n in net._commnodes
        if getattr(n.core.parent, "_inproc", False)
    ]


class TestDegradeColocated:
    def test_inproc_parented_kill_shrinks_waves(self, shutdown_nets):
        net = Network(balanced_tree(2, 3), colocate=True, policy=DEGRADE)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (8,)

        # Kill a depth-2 node: its parent edge is an InprocLink, so the
        # EOF travels by deque hand-off inside the shared loop.
        victims = inproc_commnodes(net)
        assert victims, "depth-3 colocated tree must have inproc edges"
        FaultInjector(net).kill_commnode(victims[0].core.name)
        assert wait_until(
            lambda: any(e.lost for e in net.recovery_events()),
            net=net,
            timeout=5.0,
        )
        # Two leaves gone, the shared loop keeps the survivors running.
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (6,)
        assert net.stats()["recovery"]["orphans_adopted"] == 0
        # The loop itself is still alive: the host thread hosts the
        # survivors even though one core finished.
        assert net._host.is_alive()
        assert net._host.loop.core_finished(victims[0].core)

    def test_root_child_kill_drops_whole_subtree(self, shutdown_nets):
        net = Network(balanced_tree(2, 3), colocate=True, policy=DEGRADE)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (8,)
        FaultInjector(net).kill_commnode(0)
        assert wait_until(
            lambda: any(e.lost for e in net.recovery_events()),
            net=net,
            timeout=5.0,
        )
        # A root child covers half the leaves; killing it must also
        # tear down its colocated descendants (EOF over inproc).
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)


class TestRepairColocated:
    def test_orphaned_comm_nodes_readopted(self, shutdown_nets):
        """Kill a root child: its two colocated children observe the
        EOF over their INPROC parent links, adopt to the front-end,
        and full-membership waves resume — all on the shared loop."""
        net = Network(balanced_tree(2, 3), colocate=True, policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (8,)
        epoch_before = stream.membership_epoch

        stream.send("%d", 0)
        net.flush()
        time.sleep(0.2)
        FaultInjector(net).kill_commnode(0)

        deadline = time.monotonic() + WAVE_TIMEOUT
        replied = set()
        wave2 = None
        while time.monotonic() < deadline:
            poll_backends(net, replied)
            try:
                wave2 = stream.recv(timeout=0.05)
                break
            except TimeoutError:
                continue
        assert wave2 is not None, "in-flight wave never completed"
        assert 4 <= wave2.values[0] <= 8
        assert stream.membership_epoch > epoch_before

        # The victim's comm-node children (inproc-parented) re-attach.
        assert wait_until(
            lambda: net.stats()["recovery"]["orphans_adopted"] >= 2,
            net=net,
            timeout=5.0,
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (8,)


class TestInprocLinkFaults:
    INTERVAL = 0.05

    def test_sever_inproc_link_drops_subtree(self, shutdown_nets):
        """``sever_link`` on an in-process link: the peer's undrained
        frames are discarded (a bare EOF, the deque equivalent of a
        mid-frame TCP truncation) and the subtree behind the link is
        lost, shrinking waves under ``degrade``."""
        net = Network(balanced_tree(2, 3), colocate=True, policy=DEGRADE)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (8,)

        inj = FaultInjector(net)
        core = inj.commnode(0).core
        end = core.children[next(iter(core.children))]
        assert getattr(end, "_inproc", False), (
            "root child's comm children must hang off inproc links"
        )
        inj.sever_link(0, child_index=0, mid_frame=True)
        assert ("sever_link", (core.name, end.link_id)) in inj.log
        assert end.closed

        # An inproc link has no reader to surface the EOF on the
        # severing side; like a TCP half-close, the cut is discovered
        # on the next downstream send — the broadcast of this wave.
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (6,)
        assert wait_until(
            lambda: any(e.lost for e in net.recovery_events()),
            net=net,
            timeout=5.0,
        )

    def test_drop_heartbeats_detected_on_shared_loop(self, shutdown_nets):
        """``drop_heartbeats`` on a colocated core: the node keeps
        processing but falls silent, so on an otherwise-idle network
        its parent's liveness deadline fires — over an inproc link."""
        net = Network(
            balanced_tree(2, 3),
            colocate=True,
            policy=DEGRADE,
            heartbeat_interval=self.INTERVAL,
            heartbeat_miss_threshold=3,
        )
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (8,)

        # Let probes establish the mutual-monitoring sets first.
        time.sleep(4 * self.INTERVAL)
        inj = FaultInjector(net)
        label = inj.commnode_labels()[-1]  # deepest: commnode-parented
        inj.drop_heartbeats(label)

        assert wait_until(
            lambda: any(e.lost for e in net.recovery_events()),
            net=net,
            timeout=8.0,
        ), "silenced colocated node was never declared dead"
        lost = set()
        for event in net.recovery_events():
            lost.update(event.lost)
        assert len(lost) == 2  # the silenced node's two back-ends
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (6,)


class TestFailFastColocated:
    def test_first_failure_poisons_the_network(self, shutdown_nets):
        net = Network(balanced_tree(2, 3), colocate=True, policy=FAIL_FAST)
        shutdown_nets.append(net)
        FaultInjector(net).kill_commnode(0)
        assert wait_until(
            lambda: net._core.first_failure is not None, net=net, timeout=5.0
        )
        with pytest.raises(NetworkDownError) as exc:
            net.new_stream(net.get_broadcast_communicator())
        assert exc.value.cause is not None
