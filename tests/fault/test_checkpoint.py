"""Filter-state checkpoints: the crash-consistency backbone.

Comm nodes with ``checkpoint_interval`` set periodically ship a
``TAG_CHECKPOINT`` deposit per stream to their parent: the output wave
sequence, per-child dedup watermarks (re-keyed by rank set), and the
serialized transform/sync filter state.  When the depositor dies, the
parent seeds the adopted orphans' links from that deposit — replayed
waves the dead node had already forwarded are dropped, and a partial
reduction resumes instead of silently restarting.

This file covers the pieces in isolation: the ``get_state`` /
``set_state`` round-trips (scalar state, bounded deques of arrays,
parked sync contributions), the pristine-only restore rule, watermark
seeding monotonicity, and the deposit flow itself.
"""

import time

import pytest

from repro.core import REPAIR, Network
from repro.core.packet import Packet
from repro.core.stream_manager import StreamManager
from repro.filters import TFILTER_SUM, window_filter
from repro.filters.base import FilterState, make_filter
from repro.filters.registry import (
    SFILTER_DONTWAIT,
    SFILTER_WAITFORALL,
    default_registry,
)
from repro.topology import balanced_tree

from .conftest import drive_wave, wait_until

WAVE_TIMEOUT = 10.0


def ipkt(v, stream=5, origin=0):
    return Packet(stream, 0, "%d", (v,), origin_rank=origin)


def apkt(values, stream=5, origin=0):
    return Packet(stream, 0, "%alf", (tuple(values),), origin_rank=origin)


@pytest.fixture
def registry():
    return default_registry()


def running_sum_manager(registry, links=(10,)):
    """A manager whose transform carries scalar state across waves."""

    def running_sum(packets, state):
        state["acc"] = state.get("acc", 0) + sum(p.values[0] for p in packets)
        return [packets[0].replace(values=(state["acc"],))]

    fid = registry.register_transform(make_filter(running_sum, "rsum"))
    return StreamManager.create(
        5, [0], list(links), registry, SFILTER_DONTWAIT, fid
    )


class TestFilterStateRoundTrip:
    def test_scalar_transform_state_resumes(self, registry):
        mgr1 = running_sum_manager(registry)
        assert mgr1.push_upstream(10, ipkt(5))[0].values == (5,)
        assert mgr1.push_upstream(10, ipkt(2))[0].values == (7,)
        doc = mgr1.checkpoint_state()
        assert doc["transform"]["acc"] == 7

        # A pristine adopter resumes the partial reduction exactly.
        mgr2 = running_sum_manager(registry)
        mgr2.restore_state(doc)
        assert mgr2.push_upstream(10, ipkt(1))[0].values == (8,)

    def test_dirty_adopter_refuses_stale_state(self, registry):
        mgr1 = running_sum_manager(registry)
        mgr1.push_upstream(10, ipkt(100))
        doc = mgr1.checkpoint_state()

        mgr2 = running_sum_manager(registry)
        mgr2.push_upstream(10, ipkt(3))  # mgr2 owns its state now
        mgr2.restore_state(doc)  # must be a no-op
        assert mgr2.push_upstream(10, ipkt(4))[0].values == (7,)

    def test_window_deque_of_arrays_roundtrips(self):
        """The window filter's state — a bounded deque of numpy arrays
        — survives the JSON-able snapshot encoding byte-for-byte."""
        state = FilterState()
        window_filter([apkt([1.0, 2.0])], state)
        window_filter([apkt([3.0, 4.0])], state)
        snapshot = window_filter.get_state(state)

        restored = FilterState()
        window_filter.set_state(restored, snapshot)
        assert restored["window"].maxlen == state["window"].maxlen
        # Identical continuation: the next wave's smoothed output is
        # the same whether or not the node died in between.
        (a,) = window_filter([apkt([5.0, 6.0])], state)
        (b,) = window_filter([apkt([5.0, 6.0])], restored)
        assert a.values == b.values

    def test_parked_sync_contributions_resume(self, registry):
        """Wait-for-all parked one child's contribution when the node
        died; the adopter re-queues it and the wave completes with
        nothing lost."""
        mgr1 = StreamManager.create(
            5, [0, 1], [10, 11], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        assert mgr1.push_upstream(10, ipkt(3)) == []
        doc = mgr1.checkpoint_state()
        assert "sync" in doc and doc["sync"]["pending"]

        mgr2 = StreamManager.create(
            5, [0, 1], [10, 11], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        mgr2.sync.set_state(doc["sync"])
        out = mgr2.push_upstream(11, ipkt(4))
        assert len(out) == 1 and out[0].values == (7,)

    def test_unknown_children_in_snapshot_ignored(self, registry):
        mgr1 = StreamManager.create(
            5, [0, 1], [10, 11], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        mgr1.push_upstream(10, ipkt(3))
        doc = mgr1.checkpoint_state()

        # The adopter's link ids differ: entries that match nothing
        # must be dropped silently, not crash the restore.
        mgr2 = StreamManager.create(
            5, [0, 1], [20, 21], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        mgr2.sync.set_state(doc["sync"])
        assert mgr2.sync.pending == 0


class TestWatermarks:
    def test_seed_is_monotonic(self, registry):
        mgr = StreamManager.create(
            5, [0, 1], [10, 11], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        assert mgr.watermark(10) == -1
        mgr.seed_watermark(10, 5)
        assert mgr.watermark(10) == 5
        mgr.seed_watermark(10, 3)  # stale seed must never move it back
        assert mgr.watermark(10) == 5
        assert mgr.watermark(11) == -1

    def test_checkpoint_carries_watermarks_and_out_wave(self, registry):
        mgr = StreamManager.create(
            5, [0, 1], [10, 11], registry, SFILTER_WAITFORALL, TFILTER_SUM
        )
        mgr.seed_watermark(10, 2)
        doc = mgr.checkpoint_state()
        assert doc["watermarks"] == {10: 2}
        assert doc["out_wave"] == 0
        assert doc["epoch"] == mgr.membership_epoch


class TestCheckpointFlow:
    def test_deposits_reach_the_parent(self, shutdown_nets):
        """With ``checkpoint_interval`` set, every comm node ships
        per-stream deposits upstream; the front-end holds its
        children's latest documents and the shipped bytes are
        accounted."""
        net = Network(
            balanced_tree(2, 2),
            transport="tcp",
            policy=REPAIR,
            checkpoint_interval=0.02,
        )
        shutdown_nets.append(net)
        st = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, st, WAVE_TIMEOUT).values == (4,)

        assert wait_until(
            lambda: any(
                sid == st.stream_id for (_link, sid) in net._core._checkpoints
            ),
            net=net,
            timeout=WAVE_TIMEOUT,
            poll=False,
        ), "no checkpoint deposit ever reached the front-end"
        shipped = sum(
            s.get("checkpoint_bytes", 0)
            for name, s in net.stats().items()
            if name != "recovery"
        )
        assert shipped > 0

    def test_no_deposits_when_disabled(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        st = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, st, WAVE_TIMEOUT).values == (4,)
        time.sleep(0.1)
        net.flush()
        assert not net._core._checkpoints
        assert all(
            s.get("checkpoint_bytes", 0) == 0
            for name, s in net.stats().items()
            if name != "recovery"
        )
