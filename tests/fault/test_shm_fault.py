"""Fault tolerance over shared-memory links: kill and sever scenarios.

The shm transport keeps the negotiated TCP socket as its doorbell, so
peer death surfaces through exactly the TCP code paths — EOF on the
socket — and the degrade machinery needs no shm-specific cases.  What
*is* new is cleanup: killed or severed peers must not leave POSIX
segments behind (both ends unlink on release), which these tests
assert via the process-local leak census and /dev/shm itself.
"""

import glob
import os
import signal
import time

import pytest

from repro.core import Network
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree
from repro.transport.shm import live_segments, shm_available

from .conftest import wait_until

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

KILL_TIMEOUT = 10.0


def co_located_net():
    """A depth-2 process tree with every link upgraded to shm."""
    return Network(balanced_tree(2, 2, hosts=["h0"]), transport="process")


def segments_of(names):
    """The subset of /dev/shm entries matching *names* (still linked)."""
    present = {os.path.basename(p) for p in glob.glob("/dev/shm/*")}
    return sorted(n for n in names if n in present)


class TestShmKill:
    def test_sigkill_commnode_is_noticed_and_leak_free(self, shutdown_nets):
        net = co_located_net()
        shutdown_nets.append(net)
        stats = net.stats()
        assert stats["0:front-end"]['links{kind="shm"}'] == 2

        victim = net._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        # The doorbell socket EOFs; the front-end and the victim's
        # back-ends observe link death through the ordinary paths.
        assert wait_until(
            lambda: net._core.first_failure is not None,
            net=net,
            timeout=KILL_TIMEOUT,
        )
        net.shutdown()
        # Every ring this process had mapped must be released, and the
        # killed creator's segments unlinked by the surviving side.
        assert wait_until(lambda: not live_segments(), timeout=5.0)
        assert segments_of(live_segments()) == []

    def test_survivors_keep_reducing_after_kill(self, shutdown_nets):
        net = co_located_net()
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        os.kill(net._procs[0].pid, signal.SIGKILL)
        assert wait_until(
            lambda: net._core.first_failure is not None,
            net=net,
            timeout=KILL_TIMEOUT,
        )
        # Degrade policy: the next wave completes over the surviving
        # subtree (ranks 2 and 3 behind the second comm node).
        stream.send("%d", 0)
        net.flush()
        deadline = time.monotonic() + KILL_TIMEOUT
        replied = set()
        result = None
        while time.monotonic() < deadline and result is None:
            for rank, be in net.backends.items():
                if be.shut_down or rank in replied:
                    continue
                try:
                    got = be.poll()
                except Exception:
                    replied.add(rank)
                    continue
                if got is not None:
                    got[1].send("%d", rank + 1)
                    replied.add(rank)
            try:
                result = stream.recv(timeout=0.05)
            except TimeoutError:
                continue
        assert result is not None, "post-kill wave never completed"
        assert result.values == (3 + 4,)

    def test_sever_doorbell_kills_link_cleanly(self, shutdown_nets):
        """Severing just the doorbell socket (not the process) must
        bring the link down like a TCP sever would."""
        net = co_located_net()
        shutdown_nets.append(net)
        # The front-end's child ends are ShmChannelEnds holding the
        # doorbell socket: shut one down at the socket level.
        end = next(iter(net._core.children.values()))
        assert end.transport_kind == "shm"
        end._sock.shutdown(2)
        assert wait_until(
            lambda: net._core.first_failure is not None,
            net=net,
            timeout=KILL_TIMEOUT,
        )
        net.shutdown()
        assert wait_until(lambda: not live_segments(), timeout=5.0)


class TestShmShutdownHygiene:
    def test_clean_shutdown_unlinks_everything(self, shutdown_nets):
        before = {os.path.basename(p) for p in glob.glob("/dev/shm/psm_*")}
        net = co_located_net()
        created = {
            os.path.basename(p) for p in glob.glob("/dev/shm/psm_*")
        } - before
        assert created  # the tree really did negotiate segments
        net.shutdown()
        assert wait_until(lambda: not live_segments(), timeout=5.0)
        assert wait_until(
            lambda: not segments_of(created), timeout=5.0
        ), f"segments left in /dev/shm: {segments_of(created)}"
