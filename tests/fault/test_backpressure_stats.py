"""Bounded-send-queue and link-death accounting (the PR 2 data-plane
hardening, exercised here through real failures).

``send_queue_full`` counts lossless backpressure deferrals: a flush
parked because the link's bounded send queue lacked capacity.
``messages_dropped_on_close`` counts packets discarded because their
link was already dead at flush time.  Closure must propagate — a
stream waiting on a dead child releases instead of hanging.
"""

import socket
import time

import pytest

from repro.core import Network
from repro.core.commnode import NodeCore
from repro.core.protocol import make_endpoint_report, make_new_stream
from repro.core.packet import Packet
from repro.faultinject import FaultInjector
from repro.filters import TFILTER_SUM
from repro.filters.registry import (
    SFILTER_WAITFORALL,
    TFILTER_SUM as TF_SUM,
    default_registry,
)
from repro.topology import balanced_tree
from repro.transport.channel import Channel, Inbox

from .conftest import drive_wave, wait_until

WAVE_TIMEOUT = 10.0


def build_core(n_children=2):
    registry = default_registry()
    parent_inbox, node_inbox = Inbox(), Inbox()
    parent_ch = Channel(parent_inbox, node_inbox)
    core = NodeCore(
        "drop-test", registry, n_children, parent=parent_ch.end_b, inbox=node_inbox
    )
    child_ends, child_links = [], []
    for _ in range(n_children):
        ci = Inbox()
        ch = Channel(node_inbox, ci)
        core.add_child(ch.end_a)
        child_ends.append(ch.end_b)  # the child's end (closable)
        child_links.append(ch.link_id)
    return core, parent_inbox, child_ends, child_links, parent_ch


class TestDropOnClose:
    def test_packets_to_dead_link_dropped_with_accounting(self):
        """Queue a multicast toward a child, kill the child before the
        flush: the packets are dropped (counted), the closure
        propagates, and the waiting wave releases over the survivor."""
        core, parent_inbox, child_ends, child_links, parent_ch = build_core()
        for i, link in enumerate(child_links):
            core.dispatch(link, make_endpoint_report([i]))
        core.dispatch(
            parent_ch.end_b.link_id,
            make_new_stream(1, [0, 1], SFILTER_WAITFORALL, TF_SUM),
        )
        # Multicast queued to both children; child 0 dies mid-multicast.
        core.dispatch(parent_ch.end_b.link_id, Packet(1, 100, "%d", (7,)))
        child_ends[0].close()
        core.flush()
        assert core.stats["messages_dropped_on_close"] >= 1
        # Closure propagated into the stream: the wave must now release
        # on the survivor's contribution alone.
        core.dispatch(child_links[1], Packet(1, 100, "%d", (5,), origin_rank=1))
        core.flush()
        got = []
        while not parent_inbox.empty():
            _, payload = parent_inbox.get_nowait()
            if payload is not None:
                from repro.core.batching import decode_batch

                got.extend(decode_batch(payload))
        sums = [p for p in got if p.stream_id == 1]
        assert sums and sums[-1].values == (5,)


class TestBackpressure:
    def test_send_queue_full_then_lossless_drain(self, shutdown_nets):
        """A stalled consumer backs the bounded queue up (deferrals
        counted, nothing lost); resuming drains every packet."""
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

        inj = FaultInjector(net)
        core = inj.commnode(0).core
        # Shrink the bounded send queues *and* the kernel socket
        # buffers, so a handful of packets is enough to back the
        # stalled links up (no need to move megabytes).
        for end in core.children.values():
            end.max_send_bytes = 1 << 14
            end._sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        inj.stall_backend(0)
        inj.stall_backend(1)

        blob = "x" * 8192
        n_sent = 12
        # One packet per flush cycle: coalescing them into a single
        # batch would be accepted wholesale (an empty queue takes any
        # one message), never exercising the deferral path.
        for _ in range(n_sent):
            stream.send("%s", blob)
            net.flush()
            time.sleep(0.02)
        assert wait_until(
            lambda: core.stats["send_queue_full"] >= 1,
            net=net,
            poll=False,
            timeout=5.0,
        ), "backpressure deferral never counted"
        before_drop = core.stats["messages_dropped_on_close"]

        inj.resume_backend(0)
        inj.resume_backend(1)
        # Lossless: both stalled back-ends eventually see all packets.
        received = {0: 0, 1: 0}
        deadline = time.monotonic() + WAVE_TIMEOUT
        while time.monotonic() < deadline and any(
            v < n_sent for v in received.values()
        ):
            for rank in (0, 1):
                got = net.backends[rank].poll()
                if got is not None:
                    received[rank] += 1
        assert received == {0: n_sent, 1: n_sent}
        assert core.stats["messages_dropped_on_close"] == before_drop

    def test_parked_packets_dropped_when_stalled_leaf_dies(self, shutdown_nets):
        """Packets parked by backpressure are dropped with accounting
        when their link dies instead of wedging the node."""
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

        inj = FaultInjector(net)
        core = inj.commnode(0).core
        for end in core.children.values():
            end.max_send_bytes = 1 << 14
            end._sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        inj.stall_backend(0)
        blob = "x" * 8192
        for _ in range(12):
            stream.send("%s", blob)
            net.flush()
            time.sleep(0.02)
        assert wait_until(
            lambda: core.stats["send_queue_full"] >= 1,
            net=net,
            poll=False,
            timeout=5.0,
        )
        inj.kill_backend(0)
        assert wait_until(
            lambda: core.stats["messages_dropped_on_close"] >= 1,
            net=net,
            poll=False,
            timeout=5.0,
        ), "parked packets never dropped after link death"
        # The node is still healthy: a wave over the survivors works.
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (3,)
