"""Tree repair under the ``repair`` policy (and its policy siblings).

The acceptance scenario: a fan-out-4, depth-2 TCP tree loses one
internal node mid-stream.  The in-flight Wait-For-All wave must
complete over the survivors within seconds, the front-end must learn
which ranks left (RANKS_CHANGED), the orphaned back-ends must be
re-adopted by a live ancestor, and the next wave must again cover the
full rank set.
"""

import time

import pytest

from repro.core import DEGRADE, FAIL_FAST, REPAIR, Network, NetworkDownError
from repro.faultinject import FaultInjector
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree

from .conftest import drive_wave, poll_backends, wait_until

WAVE_TIMEOUT = 10.0


class TestRepairPolicy:
    def test_orphans_readopted_and_waves_recover(self, shutdown_nets):
        """Kill one comm node mid-wave: survivors finish the wave, the
        orphans reconnect, and full-membership waves resume."""
        net = Network(balanced_tree(4, 2), transport="tcp", policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )

        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (16,)
        epoch_before = stream.membership_epoch

        # Wave 2: broadcast, let it reach the leaves, then kill the
        # first comm node (orphaning ranks 0-3) before anyone replies.
        stream.send("%d", 0)
        net.flush()
        time.sleep(0.2)
        FaultInjector(net).kill_commnode(0)

        t0 = time.monotonic()
        deadline = t0 + WAVE_TIMEOUT
        replied = set()
        wave2 = None
        while time.monotonic() < deadline:
            poll_backends(net, replied)
            try:
                wave2 = stream.recv(timeout=0.05)
                break
            except TimeoutError:
                continue
        assert wave2 is not None, "in-flight wave never completed"
        # The acceptance bound: the wave completes over survivors
        # within 5 seconds of the kill.  At minimum the 12 survivor
        # ranks contribute; orphans that reconnect fast enough to
        # re-send their reply may push the sum as high as 16.
        assert time.monotonic() - t0 < 5.0
        assert 12 <= wave2.values[0] <= 16
        assert stream.membership_epoch > epoch_before

        # The front-end was told which ranks vanished.
        lost = [e for e in net.recovery_events() if e.lost]
        assert lost and lost[0].stream_id == stream.stream_id
        assert set(lost[0].lost) == {0, 1, 2, 3}

        # Orphans reconnect to a live ancestor (driven by their polls).
        assert wait_until(
            lambda: net.stats()["recovery"]["orphans_adopted"] >= 4,
            net=net,
            timeout=5.0,
        )
        recovery = net.stats()["recovery"]
        assert recovery["orphans_adopted"] >= 4
        assert recovery["nodes_failed"] == 1
        gained = set()
        for event in net.recovery_events():
            gained.update(event.gained)
        assert gained == {0, 1, 2, 3}

        # Post-repair wave covers the full rank set again.
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (16,)
        assert sum(be.reconnects for be in net.backends.values()) == 4

    def test_process_transport_repairs_orphans(self, shutdown_nets):
        """Repair now covers real ``mrnet_commnode`` processes: SIGKILL
        one internal process and its orphaned back-ends re-home onto a
        live ancestor, restoring full wave coverage."""
        net = Network(balanced_tree(2, 2), transport="process", policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

        FaultInjector(net).kill_process(0)

        # Survivor waves may run short while the orphans re-home (the
        # repair fires from their polls); within the acceptance bound
        # a wave must cover the full rank set again.
        deadline = time.monotonic() + WAVE_TIMEOUT
        full = None
        while time.monotonic() < deadline:
            try:
                wave = drive_wave(net, stream, 2.0)
            except TimeoutError:
                continue
            if wave.values == (4,):
                full = wave
                break
        assert full is not None, "waves never recovered full membership"
        assert sum(be.reconnects for be in net.backends.values()) == 2


class TestDegradePolicy:
    def test_waves_shrink_but_network_survives(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp", policy=DEGRADE)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

        FaultInjector(net).kill_commnode(0)
        assert wait_until(
            lambda: any(e.lost for e in net.recovery_events()),
            net=net,
            timeout=5.0,
        )
        # No adoption under degrade: the subtree is simply gone.
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (2,)
        assert net.stats()["recovery"]["orphans_adopted"] == 0


class TestFailFastPolicy:
    def test_first_failure_poisons_the_network(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp", policy=FAIL_FAST)
        shutdown_nets.append(net)
        FaultInjector(net).kill_commnode(0)
        assert wait_until(
            lambda: net._core.first_failure is not None, net=net, timeout=5.0
        )
        with pytest.raises(NetworkDownError) as exc:
            net.new_stream(net.get_broadcast_communicator())
        assert exc.value.cause is not None
