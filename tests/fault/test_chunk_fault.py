"""Mid-wave faults on chunked (pipelined) streams.

A back-end that dies after shipping only a prefix of its fragment
sequence must not poison the stream: its parent discards the partial
wave (counted in ``chunk_waves_aborted``), bumps the membership epoch,
and the next wave completes over the survivors.
"""

import time

import pytest

from repro.core import Network
from repro.core.chunking import split_packet
from repro.core.packet import Packet
from repro.faultinject import FaultInjector
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree

from .conftest import drive_wave, wait_until

WAVE_TIMEOUT = 10.0
CHUNK_BYTES = 2048
N_ELEMS = 1024  # 8 KiB of float64 → 4 fragments per contribution


def chunk_aborts(net, stream_id):
    """Total aborted-wave count across every comm node's manager."""
    total = 0
    for node in net._commnodes:
        mgr = node.core.streams.get(stream_id)
        if mgr is not None and mgr._c_chunk_aborts is not None:
            total += mgr._c_chunk_aborts.value
    return total


def max_epoch(net, stream_id):
    epochs = [0]
    for node in net._commnodes:
        mgr = node.core.streams.get(stream_id)
        if mgr is not None:
            epochs.append(mgr.membership_epoch)
    return max(epochs)


class TestMidWaveBackendDeath:
    def test_partial_fragments_discarded_and_stream_recovers(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        inj = FaultInjector(net)
        st = net.new_stream(
            net.get_broadcast_communicator(),
            transform=TFILTER_SUM,
            chunk_bytes=CHUNK_BYTES,
        )

        # Wave 1: a complete chunked wave over all four back-ends.
        payload = tuple(float(i % 97) for i in range(N_ELEMS))
        st.send("%d", 0)
        for rank in sorted(net.backends):
            packet, bstream = net.backends[rank].recv(timeout=WAVE_TIMEOUT)
            bstream.send("%alf", payload)
        result = st.recv(timeout=WAVE_TIMEOUT)
        assert result.values == (tuple(v * 4 for v in payload),)

        # Wave 2: rank 0 ships only half its fragment sequence, then
        # dies.  Survivors contribute in full.
        st.send("%d", 0)
        victims = {}
        for rank in sorted(net.backends):
            packet, bstream = net.backends[rank].recv(timeout=WAVE_TIMEOUT)
            if rank == 0:
                victims[rank] = bstream
                whole = Packet(
                    st.stream_id, packet.tag, "%alf", (payload,), origin_rank=0
                )
                frags = split_packet(whole, CHUNK_BYTES, bstream._send_wave)
                assert frags is not None and len(frags) == 4
                for frag in frags[:2]:
                    bstream.send_packet(frag)
            else:
                bstream.send("%alf", payload)
        inj.kill_backend(0)

        # Rank 0's parent notices the dead link mid-wave: the partial
        # wave is aborted and the membership epoch bumps.
        assert wait_until(
            lambda: chunk_aborts(net, st.stream_id) >= 1,
            net=net,
            timeout=WAVE_TIMEOUT,
            poll=False,
        ), "partial chunked wave never aborted"
        assert max_epoch(net, st.stream_id) >= 1
        assert inj.log == [("kill_backend", 0)]

        # The truncated wave must never surface at the front-end.
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            assert st.try_recv() is None
            time.sleep(0.02)

        # Wave 3 completes over the three survivors.
        result = drive_wave(net, st, WAVE_TIMEOUT, value=5)
        assert result.values == (15,)
        assert not net.unexpected_packets()

    def test_unchunked_stream_unaffected_by_chunk_plumbing(self, shutdown_nets):
        """Control: the same fault on an unchunked stream still recovers
        via the classic path (no abort counters exist to bump)."""
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        inj = FaultInjector(net)
        st = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, st, WAVE_TIMEOUT, value=1).values == (4,)
        inj.kill_backend(0)
        assert wait_until(
            lambda: net.backends[0].shut_down, net=net, timeout=WAVE_TIMEOUT
        )
        assert drive_wave(net, st, WAVE_TIMEOUT, value=1).values == (3,)
        mgr = net._core.streams.get(st.stream_id)
        assert mgr is not None and mgr._c_chunk_aborts is None
