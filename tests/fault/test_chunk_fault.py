"""Mid-wave faults on chunked (pipelined) streams.

A back-end that dies after shipping only a prefix of its fragment
sequence must not poison the stream: its parent discards the partial
wave (counted in ``chunk_waves_aborted``), bumps the membership epoch,
and the next wave completes over the survivors.

The crash-consistency half (:class:`TestMidChunkCommNodeDeath`): kill
an *internal* node while a child is mid-``TAG_CHUNK`` sequence.  Under
``repair`` the orphans re-home and replay their un-ACKed fragment
histories, the adopter's checkpoint-seeded watermarks drop what the
dead node had already forwarded, and the wave completes **byte
identical** to the fault-free run — on the tcp, process, and colocated
runtimes alike.  Under ``degrade`` the wave shrinks to exactly the
survivors' sum.
"""

import time

import pytest

from repro.core import DEGRADE, REPAIR, Network
from repro.core.chunking import split_packet
from repro.core.packet import Packet
from repro.faultinject import FaultInjector
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree

from .conftest import drive_wave, wait_until

WAVE_TIMEOUT = 10.0
CHUNK_BYTES = 2048
N_ELEMS = 1024  # 8 KiB of float64 → 4 fragments per contribution


def chunk_aborts(net, stream_id):
    """Total aborted-wave count across every comm node's manager."""
    total = 0
    for node in net._commnodes:
        mgr = node.core.streams.get(stream_id)
        if mgr is not None and mgr._c_chunk_aborts is not None:
            total += mgr._c_chunk_aborts.value
    return total


def max_epoch(net, stream_id):
    epochs = [0]
    for node in net._commnodes:
        mgr = node.core.streams.get(stream_id)
        if mgr is not None:
            epochs.append(mgr.membership_epoch)
    return max(epochs)


class TestMidWaveBackendDeath:
    def test_partial_fragments_discarded_and_stream_recovers(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        inj = FaultInjector(net)
        st = net.new_stream(
            net.get_broadcast_communicator(),
            transform=TFILTER_SUM,
            chunk_bytes=CHUNK_BYTES,
        )

        # Wave 1: a complete chunked wave over all four back-ends.
        payload = tuple(float(i % 97) for i in range(N_ELEMS))
        st.send("%d", 0)
        for rank in sorted(net.backends):
            packet, bstream = net.backends[rank].recv(timeout=WAVE_TIMEOUT)
            bstream.send("%alf", payload)
        result = st.recv(timeout=WAVE_TIMEOUT)
        assert result.values == (tuple(v * 4 for v in payload),)

        # Wave 2: rank 0 ships only half its fragment sequence, then
        # dies.  Survivors contribute in full.
        st.send("%d", 0)
        victims = {}
        for rank in sorted(net.backends):
            packet, bstream = net.backends[rank].recv(timeout=WAVE_TIMEOUT)
            if rank == 0:
                victims[rank] = bstream
                whole = Packet(
                    st.stream_id, packet.tag, "%alf", (payload,), origin_rank=0
                )
                frags = split_packet(whole, CHUNK_BYTES, bstream._send_wave)
                assert frags is not None and len(frags) == 4
                for frag in frags[:2]:
                    bstream.send_packet(frag)
            else:
                bstream.send("%alf", payload)
        inj.kill_backend(0)

        # Rank 0's parent notices the dead link mid-wave: the partial
        # wave is aborted and the membership epoch bumps.
        assert wait_until(
            lambda: chunk_aborts(net, st.stream_id) >= 1,
            net=net,
            timeout=WAVE_TIMEOUT,
            poll=False,
        ), "partial chunked wave never aborted"
        assert max_epoch(net, st.stream_id) >= 1
        assert inj.log == [("kill_backend", 0)]

        # The truncated wave must never surface at the front-end.
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            assert st.try_recv() is None
            time.sleep(0.02)

        # Wave 3 completes over the three survivors.
        result = drive_wave(net, st, WAVE_TIMEOUT, value=5)
        assert result.values == (15,)
        assert not net.unexpected_packets()

    def test_unchunked_stream_unaffected_by_chunk_plumbing(self, shutdown_nets):
        """Control: the same fault on an unchunked stream still recovers
        via the classic path (no abort counters exist to bump)."""
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        inj = FaultInjector(net)
        st = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, st, WAVE_TIMEOUT, value=1).values == (4,)
        inj.kill_backend(0)
        assert wait_until(
            lambda: net.backends[0].shut_down, net=net, timeout=WAVE_TIMEOUT
        )
        assert drive_wave(net, st, WAVE_TIMEOUT, value=1).values == (3,)
        mgr = net._core.streams.get(st.stream_id)
        assert mgr is not None and mgr._c_chunk_aborts is None


class TestMidChunkCommNodeDeath:
    """Kill an internal node mid-``TAG_CHUNK`` sequence.

    The acceptance scenario for crash-consistent waves: rank 0 has
    shipped half its fragments when its parent comm node dies.  Under
    ``repair`` the reassembled wave must be byte-identical to the
    fault-free run — no back-end contribution lost (the orphans replay
    un-ACKed history and finish the sequence on the new edge) and none
    duplicated (the adopter's watermark, seeded from the dead node's
    checkpoint, drops the replayed waves it already aggregated).  Under
    ``degrade`` the wave must shrink to exactly the survivors' sum.
    """

    PAYLOAD = tuple(float(i % 97) for i in range(N_ELEMS))

    def _chunked_stream(self, net):
        return net.new_stream(
            net.get_broadcast_communicator(),
            transform=TFILTER_SUM,
            chunk_bytes=CHUNK_BYTES,
        )

    def _begin_wave(self, net, st):
        """Broadcast one wave; every rank receives it before anyone
        replies.  Returns ``(reply_streams, broadcast_tag)``."""
        st.send("%d", 0)
        handles = {}
        tag = None
        for rank in sorted(net.backends):
            packet, bstream = net.backends[rank].recv(timeout=WAVE_TIMEOUT)
            handles[rank] = bstream
            tag = packet.tag
        return handles, tag

    def _send_half_sequence(self, bstream, tag, stream_id):
        """Rank 0 ships exactly the first half of its fragment wave.

        Fragments are pre-split and recorded by hand (the replay
        history normally fills in ``_send_maybe_chunked``) so the kill
        lands deterministically *inside* one ``TAG_CHUNK`` sequence.
        """
        whole = Packet(stream_id, tag, "%alf", (self.PAYLOAD,), origin_rank=0)
        frags = split_packet(whole, CHUNK_BYTES, bstream._send_wave)
        assert frags is not None and len(frags) == 4
        bstream._send_wave += 1
        for frag in frags[:2]:
            bstream.send_packet(frag)
            bstream._record(frag)
        return frags

    @pytest.mark.parametrize("mode", ["tcp", "process", "colocated"])
    def test_repair_wave_byte_identical_to_fault_free_run(
        self, shutdown_nets, mode
    ):
        kwargs = {"colocate": True} if mode == "colocated" else {"transport": mode}
        net = Network(
            balanced_tree(2, 2),
            policy=REPAIR,
            checkpoint_interval=0.02,
            **kwargs,
        )
        shutdown_nets.append(net)
        st = self._chunked_stream(net)
        expected = (tuple(v * 4 for v in self.PAYLOAD),)

        # Wave 1: the fault-free reference result.
        handles, tag = self._begin_wave(net, st)
        for bstream in handles.values():
            bstream.send("%alf", self.PAYLOAD)
        assert st.recv(timeout=WAVE_TIMEOUT).values == expected

        # Gate on the doomed node's checkpoint reaching the front-end:
        # watermarks covering wave 1 for ranks 0 AND 1 are what make
        # the post-repair replay duplicate-free, deterministically.
        def checkpointed():
            for (_link, sid), doc in list(net._core._checkpoints.items()):
                if sid != st.stream_id:
                    continue
                marks = doc.get("watermarks", {})
                if marks.get("0", -1) >= 0 and marks.get("1", -1) >= 0:
                    return True
            return False

        assert wait_until(
            checkpointed, net=net, timeout=WAVE_TIMEOUT, poll=False
        ), "doomed comm node never deposited a checkpoint upstream"

        # Wave 2: rank 0 is mid-fragment-sequence when its parent dies.
        handles, tag = self._begin_wave(net, st)
        frags = self._send_half_sequence(handles[0], tag, st.stream_id)
        inj = FaultInjector(net)
        if mode == "process":
            inj.kill_process(0)
        else:
            inj.kill_commnode(0)

        # The orphans notice the EOF on their next poll, re-home onto a
        # live ancestor, and replay their un-ACKed fragment histories.
        def repaired():
            for rank in (0, 1):
                try:
                    net.backends[rank].poll()
                except Exception:
                    pass
            return all(net.backends[r].reconnects >= 1 for r in (0, 1))

        assert wait_until(
            repaired, net=net, timeout=WAVE_TIMEOUT, poll=False
        ), "orphaned back-ends never re-homed onto a live ancestor"

        # Rank 0 finishes its sequence on the new edge: the replayed
        # prefix plus this tail form one contiguous fragment wave.
        for frag in frags[2:]:
            handles[0].send_packet(frag)
            handles[0]._record(frag)
        for rank in (1, 2, 3):
            handles[rank].send("%alf", self.PAYLOAD)

        result = st.recv(timeout=WAVE_TIMEOUT)
        # Byte-identical: every contribution exactly once.  A lost
        # fragment would stall or shrink the wave; an undeduplicated
        # replay would overshoot the fault-free sum.
        assert result.values == expected
        assert sum(be.reconnects for be in net.backends.values()) == 2
        # Replay actually happened: wave 1 (deduped at the adopter) and
        # the wave-2 prefix both retransmitted.
        assert net.backends[0].chunks_retransmitted >= 2
        assert not net.unexpected_packets()

    def test_degrade_wave_shrinks_to_survivor_sum(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp", policy=DEGRADE)
        shutdown_nets.append(net)
        st = self._chunked_stream(net)

        handles, tag = self._begin_wave(net, st)
        for bstream in handles.values():
            bstream.send("%alf", self.PAYLOAD)
        assert st.recv(timeout=WAVE_TIMEOUT).values == (
            tuple(v * 4 for v in self.PAYLOAD),
        )

        # Wave 2: rank 0 mid-sequence, then its parent dies.  No
        # repair: the wave completes over the surviving subtree only.
        handles, tag = self._begin_wave(net, st)
        self._send_half_sequence(handles[0], tag, st.stream_id)
        FaultInjector(net).kill_commnode(0)
        for rank in (2, 3):
            handles[rank].send("%alf", self.PAYLOAD)

        result = st.recv(timeout=WAVE_TIMEOUT)
        # Correctly shrunken: exactly the survivors' sum, byte for byte
        # — the severed half-sequence never corrupts the aggregate.
        assert result.values == (tuple(v * 2 for v in self.PAYLOAD),)
        lost = set()
        for event in net.recovery_events():
            lost.update(event.lost)
        assert lost == {0, 1}
        assert not net.unexpected_packets()
