"""Network.shutdown must be idempotent and hang-proof, and a downed
network must answer API calls with a typed error, not a hang."""

import time

import pytest

from repro.core import Network, NetworkDownError
from repro.core.network import NetworkError
from repro.faultinject import FaultInjector
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree

from .conftest import drive_wave

WAVE_TIMEOUT = 10.0


class TestIdempotentShutdown:
    def test_shutdown_twice_is_safe(self):
        net = Network(balanced_tree(2, 2), transport="tcp")
        net.shutdown()
        net.shutdown()  # second call is a no-op, not an error
        assert not any(node.is_alive() for node in net._commnodes)

    def test_api_after_shutdown_raises_typed_error(self):
        net = Network(balanced_tree(2, 2))
        net.shutdown()
        with pytest.raises(NetworkDownError) as exc:
            net.get_broadcast_communicator()
        assert "shut down" in str(exc.value)
        # NetworkDownError subclasses NetworkError: existing callers
        # that catch the broad type keep working.
        assert isinstance(exc.value, NetworkError)

    def test_shutdown_after_failed_startup(self):
        """A constructor that dies half-built must leave no stuck
        threads behind (the constructor shuts itself down)."""
        with pytest.raises(NetworkError):
            Network(balanced_tree(2, 2), transport="no-such-transport")
        # Unknown policy fails validation before any thread starts.
        with pytest.raises(NetworkError):
            Network(balanced_tree(2, 2), policy="no-such-policy")

    def test_shutdown_with_wedged_node_does_not_hang(self):
        """A node that ignores the SHUTDOWN broadcast is force-killed
        after join_timeout instead of hanging the caller."""
        net = Network(balanced_tree(2, 2), transport="tcp")
        FaultInjector(net).wedge_commnode(0)
        t0 = time.monotonic()
        net.shutdown(join_timeout=1.0)
        assert time.monotonic() - t0 < 8.0
        assert not any(node.is_alive() for node in net._commnodes)

    def test_shutdown_after_commnode_crash(self):
        net = Network(balanced_tree(2, 2), transport="tcp")
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)
        FaultInjector(net).kill_commnode(1)
        time.sleep(0.1)
        net.shutdown(join_timeout=2.0)
        assert not any(node.is_alive() for node in net._commnodes)
