"""The fault-injection harness itself: determinism and frame safety."""

import time

import pytest

from repro.core import Network
from repro.faultinject import FaultEvent, FaultInjector, FaultSchedule
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree

from .conftest import drive_wave, wait_until

WAVE_TIMEOUT = 10.0


class TestScheduleDeterminism:
    def test_same_seed_same_plan(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        inj = FaultInjector(net)
        plans = [
            FaultSchedule.random(inj, seed=42, n_faults=2, horizon=1.0).events
            for _ in range(2)
        ]
        assert plans[0] == plans[1]
        different = FaultSchedule.random(
            inj, seed=43, n_faults=2, horizon=1.0
        ).events
        assert plans[0] != different

    def test_poll_fires_in_time_order_and_logs(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        inj = FaultInjector(net)
        labels = inj.commnode_labels()
        sched = FaultSchedule(
            inj,
            [
                FaultEvent(0.0, "wedge_commnode", (labels[0],)),
                FaultEvent(0.05, "unwedge_commnode", (labels[0],)),
            ],
        )
        with pytest.raises(RuntimeError):
            sched.poll()  # must arm() first
        sched.arm()
        deadline = time.monotonic() + 5.0
        while not sched.done and time.monotonic() < deadline:
            sched.poll()
            time.sleep(0.01)
        assert sched.done
        assert [e.action for e in sched.fired] == [
            "wedge_commnode",
            "unwedge_commnode",
        ]
        assert [entry[0] for entry in inj.log] == [
            "wedge_commnode",
            "unwedge_commnode",
        ]
        assert not net._commnodes[0].core.wedged


class TestSeverLink:
    def test_mid_frame_truncation_never_delivers_garbage(self, shutdown_nets):
        """A link cut inside a frame (length prefix promising bytes
        that never arrive) must surface as link death, not as a
        corrupt packet."""
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

        inj = FaultInjector(net)
        inj.sever_link(0, child_index=0, mid_frame=True)

        # The orphaned back-end sees EOF (no partial-frame garbage) and
        # the next wave completes over the survivors.
        assert wait_until(
            lambda: any(be.shut_down for be in net.backends.values()),
            net=net,
            timeout=5.0,
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (3,)
        assert not net.unexpected_packets()


class TestTargeting:
    def test_commnode_by_label_and_bad_names(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp")
        shutdown_nets.append(net)
        inj = FaultInjector(net)
        labels = inj.commnode_labels()
        assert len(labels) == 2
        assert inj.commnode(labels[1]) is net._commnodes[1]
        with pytest.raises(KeyError):
            inj.commnode("no-such-node")
