"""Elastic membership: back-ends join and leave a *running* network.

A brand-new rank joins via :meth:`Network.attach_backend` with no
reserved slot: the recovery coordinator picks a live parent, and the
``TAG_JOIN`` announcement — the §2.5 endpoint report reused for
elastic membership — splices the rank into routing and open streams
at every ancestor, entering waves at an epoch boundary.  A back-end
leaves via :meth:`BackEnd.leave`: it flushes, announces ``TAG_LEAVE``,
and its EOF is an expected departure, never failure-accounted.

The churn invariant (the tentpole's acceptance): waves flowing while
members come and go must never *tear* — every aggregate the front-end
releases is an exact per-member sum for a membership the stream
actually held, never a double-count and never a silent partial.
"""

import time

import pytest

from repro.core import REPAIR, Network, NetworkError
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree

from .conftest import drive_wave, wait_until

WAVE_TIMEOUT = 10.0


def waves_until_sum(net, stream, want, allowed, timeout=WAVE_TIMEOUT):
    """Drive waves until one sums to *want*; every observed wave must
    stay inside *allowed* (the torn-epoch assertion).  Returns the
    sums seen, ending with *want*."""
    deadline = time.monotonic() + timeout
    seen = []
    while time.monotonic() < deadline:
        try:
            wave = drive_wave(net, stream, 2.0)
        except TimeoutError:
            continue
        total = wave.values[0]
        seen.append(total)
        assert total in allowed, (
            f"torn wave: sum {total} matches no valid membership "
            f"{sorted(allowed)} (history: {seen})"
        )
        if total == want:
            return seen
    raise AssertionError(f"waves never reached sum {want}; saw {seen}")


class TestJoin:
    @pytest.mark.parametrize("mode", ["tcp", "colocated", "process"])
    def test_new_rank_joins_running_network(self, shutdown_nets, mode):
        kwargs = {"colocate": True} if mode == "colocated" else {"transport": mode}
        net = Network(balanced_tree(2, 2), policy=REPAIR, **kwargs)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

        joiner = net.attach_backend()
        assert joiner.rank == 4
        assert joiner.connected
        assert 4 in net.backends

        # The joined rank receives broadcasts and contributes to waves.
        waves_until_sum(net, stream, 5, allowed={4, 5})

        # Every ancestor spliced it in; the front-end fired the gained
        # event and counted the join.
        gained = set()
        for event in net.recovery_events():
            gained.update(event.gained)
        assert 4 in gained
        assert net.stats()["recovery"]["members_joined"] >= 1

    def test_explicit_unreserved_rank_and_duplicate_rejected(
        self, shutdown_nets
    ):
        net = Network(balanced_tree(2, 2), transport="tcp", policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

        joiner = net.attach_backend(7)
        assert joiner.rank == 7
        waves_until_sum(net, stream, 5, allowed={4, 5})
        with pytest.raises(NetworkError):
            net.attach_backend(7)

        # RanksChanged flooded DOWN too: surviving back-ends hear about
        # the new member on their control stream.
        assert wait_until(
            lambda: any(
                any(7 in event.gained for event in be.membership_events)
                for rank, be in net.backends.items()
                if rank != 7
            ),
            net=net,
            timeout=5.0,
        ), "no existing back-end ever heard the join"


class TestLeave:
    def test_leave_shrinks_without_failure_accounting(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp", policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

        net.backends[3].leave()
        assert net.backends[3].left
        assert net.backends[3].shut_down

        waves_until_sum(net, stream, 3, allowed={3, 4})

        # A leave is an announced departure: membership shrinks and the
        # lost event fires, but nothing is failure-accounted and no
        # orphan needed adopting.
        lost = set()
        for event in net.recovery_events():
            lost.update(event.lost)
        assert lost == {3}
        recovery = net.stats()["recovery"]
        assert recovery["members_left"] >= 1
        assert recovery["nodes_failed"] == 0
        assert recovery["orphans_adopted"] == 0

    def test_survivors_hear_the_departure(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="tcp", policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)
        net.backends[0].leave()
        waves_until_sum(net, stream, 3, allowed={3, 4})
        assert wait_until(
            lambda: any(
                any(0 in event.lost for event in be.membership_events)
                for rank, be in net.backends.items()
                if rank != 0
            ),
            net=net,
            timeout=5.0,
        ), "no surviving back-end ever heard the leave"


class TestChurn:
    def test_waves_never_tear_while_members_come_and_go(self, shutdown_nets):
        """Interleave joins and leaves with continuously flowing waves:
        every aggregate must match an exact membership (8 or 9 here) —
        the scaled-down version of the 16-join/16-leave acceptance run
        (the full-size churn lives in the nightly chaos soak)."""
        net = Network(balanced_tree(2, 3), transport="tcp", policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (8,)
        epoch0 = stream.membership_epoch

        allowed = {8, 9}
        net.attach_backend()
        waves_until_sum(net, stream, 9, allowed)
        net.backends[0].leave()
        waves_until_sum(net, stream, 8, allowed)
        net.attach_backend()
        waves_until_sum(net, stream, 9, allowed)
        net.backends[1].leave()
        waves_until_sum(net, stream, 8, allowed)

        assert stream.membership_epoch > epoch0
        recovery = net.stats()["recovery"]
        assert recovery["members_joined"] >= 2
        assert recovery["members_left"] >= 2
        assert recovery["nodes_failed"] == 0
        assert not net.unexpected_packets()
