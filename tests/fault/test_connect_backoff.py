"""Connect retries: capped exponential backoff + InstantiationError."""

import socket

import pytest

from repro.core.failure import InstantiationError, backoff_delays
from repro.transport.channel import Inbox
from repro.transport.tcp import tcp_connect_retry, tcp_connect_socket_retry


def dead_address():
    """An address guaranteed to refuse connections right now."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    addr = probe.getsockname()
    probe.close()
    return addr


class TestBackoffDelays:
    def test_deterministic_by_default(self):
        assert backoff_delays(5) == backoff_delays(5)

    def test_capped_exponential_with_jitter_bounds(self):
        delays = backoff_delays(8, base=0.1, cap=2.0, jitter=0.5)
        assert len(delays) == 7  # attempts - 1 sleeps
        for k, d in enumerate(delays):
            nominal = min(0.1 * 2**k, 2.0)
            assert 0.5 * nominal <= d <= 1.5 * nominal
        # The cap keeps late retries bounded regardless of exponent.
        assert max(delays) <= 1.5 * 2.0

    def test_single_attempt_means_no_sleeps(self):
        assert backoff_delays(1) == []


class TestConnectRetry:
    def test_unreachable_address_named_in_error(self):
        addr = dead_address()
        slept = []
        with pytest.raises(InstantiationError) as exc:
            tcp_connect_socket_retry(
                addr, attempts=3, timeout=0.2, sleep=slept.append
            )
        err = exc.value
        assert err.address == addr
        assert err.attempts == 3
        assert f"{addr[0]}:{addr[1]}" in str(err)
        assert "3 connect attempt" in str(err)
        assert len(slept) == 2  # attempts - 1 backoff sleeps

    def test_channel_variant_propagates_error(self):
        with pytest.raises(InstantiationError):
            tcp_connect_retry(
                dead_address(),
                Inbox(),
                attempts=2,
                timeout=0.2,
                sleep=lambda _d: None,
            )

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            tcp_connect_socket_retry(dead_address(), attempts=0)

    def test_succeeds_once_listener_appears(self):
        """The retry loop converges when the peer shows up late —
        the launch-race case the backoff exists for."""
        from repro.transport.tcp import TcpListener

        inbox = Inbox()
        listener = TcpListener(inbox)
        try:
            sock = tcp_connect_socket_retry(listener.address, attempts=2)
            sock.close()
        finally:
            listener.close()
