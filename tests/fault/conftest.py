"""Shared drivers for the fault-tolerance suite.

Back-ends and the front-end are passive (pumped by API calls), so the
tests drive the whole tool from one thread: broadcast, poll every
live back-end, echo a reply, pump the front-end.  Fault recovery is
likewise driven by these polls — a back-end only notices its dead
parent (and reconnects) when the tool thread touches it, exactly like
a real tool's receive loop.
"""

import time

import pytest


def poll_backends(net, replied=None, value=1):
    """One polling sweep: every live back-end answers pending packets."""
    replied = set() if replied is None else replied
    for rank, be in net.backends.items():
        if be.shut_down or rank in replied:
            continue
        try:
            got = be.poll()
        except Exception:
            replied.add(rank)
            continue
        if got is None:
            if be.shut_down:
                replied.add(rank)
            continue
        _, bstream = got
        try:
            bstream.send("%d", value)
        except Exception:
            pass
        replied.add(rank)
    return replied


def drive_wave(net, stream, timeout=10.0, value=1):
    """Broadcast-and-reduce one wave; returns the front-end's packet.

    Every live back-end replies *value*; the returned packet is the
    aggregated wave the front-end releases.
    """
    stream.send("%d", 0)
    net.flush()
    deadline = time.monotonic() + timeout
    replied = set()
    while time.monotonic() < deadline:
        poll_backends(net, replied, value=value)
        try:
            return stream.recv(timeout=0.05)
        except TimeoutError:
            continue
    raise TimeoutError("wave did not complete")


def wait_until(pred, net=None, timeout=5.0, poll=True):
    """Pump the network (and back-ends) until *pred* goes true."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if net is not None:
            if poll:
                poll_backends(net, replied=set())
            net.flush()
        if pred():
            return True
        time.sleep(0.02)
    return False


@pytest.fixture
def shutdown_nets():
    """Register networks for teardown even when an assertion fires."""
    nets = []
    yield nets
    for net in nets:
        try:
            net.shutdown(join_timeout=2.0)
        except Exception:
            pass
