"""Tests for the in-process transport (colocated comm-node links).

An :class:`InprocLink` pair moves framed batches between two cores on
ONE shared event loop by deque hand-off — no sockets, no syscalls.
These tests pin down the ChannelEnd contract (send/capacity/backlog),
the sender-side backpressure bound, EOF ordering (frames before
``None``), and that a multi-core loop delivers each end's traffic to
the core that owns it.
"""

import struct
import threading
import time

import pytest

from repro.transport.eventloop import SEND_QUEUE_MAX_BYTES, EventLoop, SendQueueFull

_LEN = struct.Struct(">I")
RECV_TIMEOUT = 10.0


class RecorderCore:
    """A minimal NodeCore stand-in: records every delivered payload."""

    def __init__(self, name="core"):
        self.name = name
        self.inbox = _FakeInbox()
        self.crashed = False
        self.shutting_down = False
        self.extra_metrics = []
        self.worker_pool = None
        self.received = []
        self.closed_links = []

    # -- surface the loop touches -----------------------------------------
    def handle_payload(self, link_id, payload):
        if payload is None:
            self.closed_links.append(link_id)
        else:
            self.received.append((link_id, payload))

    def admit_pending_children(self):
        pass

    def poll_streams(self):
        pass

    def heartbeat_tick(self):
        pass

    def next_timeout_deadline(self):
        return None

    def next_heartbeat_deadline(self):
        return None

    next_flush_deadline = None  # property on the real NodeCore

    def maybe_flush(self):
        pass

    def flush(self):
        pass

    def close_all(self):
        pass


class _FakeInbox:
    def __init__(self):
        self.on_deliver = None

    def get_nowait(self):
        import queue

        raise queue.Empty

    def empty(self):
        return True


def wait_until(pred, timeout=RECV_TIMEOUT):
    deadline = time.monotonic() + timeout
    while not pred():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.002)
    return True


@pytest.fixture
def loop():
    lp = EventLoop()
    yield lp
    # Finish every bound core so run() exits, then join.
    for core in lp.cores:
        core.shutting_down = True
    lp.wake()
    if lp._thread_id is not None:
        for _ in range(1000):
            if not any(
                t.name == "test-loop" for t in threading.enumerate()
            ):
                break
            time.sleep(0.005)
    else:
        lp.close()


def start(loop):
    threading.Thread(target=loop.run, name="test-loop", daemon=True).start()


class TestPairSemantics:
    def test_send_delivers_to_peer_core(self, loop):
        a_core, b_core = RecorderCore("a"), RecorderCore("b")
        end_a, end_b = loop.add_inproc_pair(core_a=a_core, core_b=b_core)
        loop.bind(a_core)
        loop.bind(b_core)
        start(loop)
        end_a.send(b"hello")
        end_b.send(b"reply")
        assert wait_until(lambda: b_core.received and a_core.received)
        assert b_core.received == [(end_b.link_id, b"hello")]
        assert a_core.received == [(end_a.link_id, b"reply")]

    def test_transport_kind_and_metrics(self, loop):
        end_a, end_b = loop.add_inproc_pair()
        assert end_a.transport_kind == "inproc"
        m = end_a.link_metrics()
        assert m["kind"] == "inproc" and m["send_backlog_bytes"] == 0
        end_a.send(b"xyzzy")
        assert end_a.send_backlog == len(b"xyzzy") + _LEN.size

    def test_non_bytes_payload_rejected(self, loop):
        end_a, _ = loop.add_inproc_pair()
        with pytest.raises(TypeError):
            end_a.send("not bytes")

    def test_send_on_closed_end_raises(self, loop):
        end_a, _ = loop.add_inproc_pair()
        end_a.close()
        with pytest.raises(ConnectionError):
            end_a.send(b"x")

    def test_send_to_closed_peer_raises(self, loop):
        end_a, end_b = loop.add_inproc_pair()
        end_b.close()
        with pytest.raises(ConnectionError):
            end_a.send(b"x")


class TestBackpressure:
    def test_empty_backlog_accepts_any_single_frame(self, loop):
        end_a, _ = loop.add_inproc_pair(max_send_bytes=16)
        end_a.send(b"y" * 1000)  # oversized but backlog was empty

    def test_full_backlog_refuses(self, loop):
        end_a, _ = loop.add_inproc_pair(max_send_bytes=64)
        end_a.send(b"y" * 100)  # fills past the bound
        with pytest.raises(SendQueueFull):
            end_a.send(b"z")

    def test_capacity_tracks_peer_backlog(self, loop):
        end_a, _ = loop.add_inproc_pair()
        assert end_a.send_capacity() == SEND_QUEUE_MAX_BYTES
        end_a.send(b"q" * 100)
        assert (
            end_a.send_capacity()
            == SEND_QUEUE_MAX_BYTES - 100 - _LEN.size
        )

    def test_drain_restores_capacity(self, loop):
        a_core, b_core = RecorderCore("a"), RecorderCore("b")
        end_a, _ = loop.add_inproc_pair(
            core_a=a_core, core_b=b_core, max_send_bytes=256
        )
        loop.bind(a_core)
        loop.bind(b_core)
        end_a.send(b"y" * 300)
        assert end_a.send_capacity() == 0
        start(loop)
        assert wait_until(lambda: end_a.send_capacity() == 256)


class TestEofOrdering:
    def test_frames_then_none(self, loop):
        a_core, b_core = RecorderCore("a"), RecorderCore("b")
        end_a, end_b = loop.add_inproc_pair(core_a=a_core, core_b=b_core)
        loop.bind(a_core)
        loop.bind(b_core)
        # Queue frames, then close, all before the loop ever runs: the
        # peer must still see every frame before the EOF.
        end_a.send(b"one")
        end_a.send(b"two")
        end_a.close()
        start(loop)
        assert wait_until(lambda: b_core.closed_links)
        assert b_core.received == [
            (end_b.link_id, b"one"),
            (end_b.link_id, b"two"),
        ]
        assert b_core.closed_links == [end_b.link_id]

    def test_cross_thread_send_wakes_loop(self, loop):
        a_core, b_core = RecorderCore("a"), RecorderCore("b")
        end_a, _ = loop.add_inproc_pair(core_a=a_core, core_b=b_core)
        loop.bind(a_core)
        loop.bind(b_core)
        start(loop)
        time.sleep(0.05)  # let the loop park in select()
        t0 = time.monotonic()
        end_a.send(b"ping")
        assert wait_until(lambda: b_core.received, timeout=2.0)
        # Delivery must come from the wakeup, not the idle timeout.
        assert time.monotonic() - t0 < 1.0
