"""Tests for the TCP transport (loopback sockets)."""

import pytest

from repro.core.batching import decode_batch, encode_batch
from repro.core.packet import Packet
from repro.transport.channel import Inbox
from repro.transport.tcp import TcpListener, tcp_connect, tcp_pair


class TestTcpPair:
    def test_roundtrip(self):
        a, b = Inbox(), Inbox()
        end_a, end_b = tcp_pair(a, b)
        try:
            end_a.send(b"hello")
            link, payload = b.get(timeout=2)
            assert payload == b"hello"
            assert link == end_b.link_id
            end_b.send(b"world")
            assert a.get(timeout=2)[1] == b"world"
        finally:
            end_a.close()
            end_b.close()

    def test_framing_of_many_messages(self):
        a, b = Inbox(), Inbox()
        end_a, end_b = tcp_pair(a, b)
        try:
            msgs = [bytes([i]) * (i + 1) for i in range(30)]
            for m in msgs:
                end_a.send(m)
            got = [b.get(timeout=2)[1] for _ in range(30)]
            assert got == msgs
        finally:
            end_a.close()
            end_b.close()

    def test_close_delivers_eof(self):
        a, b = Inbox(), Inbox()
        end_a, end_b = tcp_pair(a, b)
        end_a.close()
        # Peer's reader observes EOF and delivers the None sentinel.
        link, payload = b.get(timeout=2)
        assert payload is None
        end_b.close()

    def test_send_after_close_raises(self):
        a, b = Inbox(), Inbox()
        end_a, end_b = tcp_pair(a, b)
        end_a.close()
        with pytest.raises(ConnectionError):
            end_a.send(b"x")
        end_b.close()

    def test_rejects_non_bytes(self):
        a, b = Inbox(), Inbox()
        end_a, end_b = tcp_pair(a, b)
        try:
            with pytest.raises(TypeError):
                end_a.send(123)  # type: ignore[arg-type]
        finally:
            end_a.close()
            end_b.close()

    def test_packet_batches_survive_sockets(self):
        """The full codec path over a real socket."""
        a, b = Inbox(), Inbox()
        end_a, end_b = tcp_pair(a, b)
        try:
            packets = [
                Packet(1, i, "%d %s %alf", (i, f"be{i}", (i * 0.5, i * 2.0)))
                for i in range(10)
            ]
            end_a.send(encode_batch(packets))
            _, payload = b.get(timeout=2)
            assert decode_batch(payload) == packets
        finally:
            end_a.close()
            end_b.close()


class TestListener:
    def test_accept_and_exchange(self):
        server_inbox, client_inbox = Inbox(), Inbox()
        listener = TcpListener(server_inbox)
        try:
            client_end = tcp_connect(listener.address, client_inbox, timeout=2)
            server_end = listener.accept(timeout=2)
            # Ids are per-process local names and need not agree across
            # the socket (they must be unique per receiving process).
            assert server_end.link_id != 0
            client_end.send(b"ping")
            assert server_inbox.get(timeout=2)[1] == b"ping"
            server_end.send(b"pong")
            assert client_inbox.get(timeout=2)[1] == b"pong"
            client_end.close()
            server_end.close()
        finally:
            listener.close()

    def test_multiple_clients_one_inbox(self):
        server_inbox = Inbox()
        listener = TcpListener(server_inbox)
        try:
            clients = []
            server_ends = []
            for i in range(3):
                c = tcp_connect(listener.address, Inbox(), timeout=2)
                clients.append(c)
                server_ends.append(listener.accept(timeout=2))
            for i, c in enumerate(clients):
                c.send(bytes([i]))
            got = [server_inbox.get(timeout=2) for _ in range(3)]
            assert {payload for _, payload in got} == {b"\x00", b"\x01", b"\x02"}
            # Each connection got its own local id at the server.
            server_ids = {e.link_id for e in server_ends}
            assert len(server_ids) == 3
            assert {lid for lid, _ in got} == server_ids
            for e in clients + server_ends:
                e.close()
        finally:
            listener.close()
