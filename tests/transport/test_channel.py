"""Tests for in-memory channels and inboxes."""

import queue
import threading

import pytest

from repro.transport.channel import Channel, ChannelClosed, Inbox


class TestChannel:
    def test_bidirectional_delivery(self):
        a, b = Inbox(), Inbox()
        ch = Channel(a, b)
        ch.end_a.send(b"to-b")
        ch.end_b.send(b"to-a")
        assert b.get(timeout=1) == (ch.link_id, b"to-b")
        assert a.get(timeout=1) == (ch.link_id, b"to-a")

    def test_shared_link_id(self):
        a, b = Inbox(), Inbox()
        ch = Channel(a, b)
        assert ch.end_a.link_id == ch.end_b.link_id == ch.link_id

    def test_unique_link_ids(self):
        a, b = Inbox(), Inbox()
        ids = {Channel(a, b).link_id for _ in range(10)}
        assert len(ids) == 10

    def test_fifo_order(self):
        a, b = Inbox(), Inbox()
        ch = Channel(a, b)
        for i in range(50):
            ch.end_a.send(bytes([i]))
        got = [b.get(timeout=1)[1][0] for _ in range(50)]
        assert got == list(range(50))

    def test_close_notifies_peer(self):
        a, b = Inbox(), Inbox()
        ch = Channel(a, b)
        ch.end_a.close()
        link, payload = b.get(timeout=1)
        assert link == ch.link_id and payload is None

    def test_send_after_close_raises(self):
        a, b = Inbox(), Inbox()
        ch = Channel(a, b)
        ch.end_a.close()
        with pytest.raises(ChannelClosed):
            ch.end_a.send(b"x")
        with pytest.raises(ChannelClosed):
            ch.end_b.send(b"y")

    def test_close_idempotent(self):
        a, b = Inbox(), Inbox()
        ch = Channel(a, b)
        ch.end_a.close()
        ch.end_a.close()
        assert b.get(timeout=1)[1] is None
        assert b.empty()

    def test_rejects_non_bytes(self):
        a, b = Inbox(), Inbox()
        ch = Channel(a, b)
        with pytest.raises(TypeError):
            ch.end_a.send("not bytes")  # type: ignore[arg-type]

    def test_payload_copied_to_bytes(self):
        a, b = Inbox(), Inbox()
        ch = Channel(a, b)
        buf = bytearray(b"abc")
        ch.end_a.send(buf)
        buf[0] = 0
        assert b.get(timeout=1)[1] == b"abc"


class TestInbox:
    def test_multiplexes_many_channels(self):
        hub = Inbox()
        others = [Inbox() for _ in range(4)]
        channels = [Channel(o, hub) for o in others]
        for i, ch in enumerate(channels):
            ch.end_a.send(bytes([i]))
        got = {hub.get(timeout=1) for _ in range(4)}
        assert got == {(ch.link_id, bytes([i])) for i, ch in enumerate(channels)}

    def test_get_timeout(self):
        with pytest.raises(queue.Empty):
            Inbox().get(timeout=0.01)

    def test_get_nowait(self):
        inbox = Inbox()
        with pytest.raises(queue.Empty):
            inbox.get_nowait()

    def test_threaded_producers(self):
        hub = Inbox()
        other = Inbox()
        ch = Channel(other, hub)

        def produce(n):
            for _ in range(n):
                ch.end_a.send(b"m")

        threads = [threading.Thread(target=produce, args=(100,)) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        count = 0
        while not hub.empty():
            hub.get_nowait()
            count += 1
        assert count == 400
