"""Tests for the selector-driven event loop (one I/O thread per node).

Covers the PR's acceptance points: a comm node with many links runs on
exactly one thread, wide fan-in relays correctly, bounded send queues
produce observable lossless backpressure, TimeOut-stream deadlines are
honoured without busy-spinning, and abrupt peer death mid-frame tears
the link down cleanly instead of wedging the loop.
"""

import socket
import struct
import threading
import time

import pytest

from repro.core.batching import decode_batch, encode_batch
from repro.core.commnode import CommNode, NodeCore
from repro.core.packet import Packet
from repro.core.protocol import (
    make_endpoint_report,
    make_new_stream,
    make_shutdown,
)
from repro.filters.registry import SFILTER_TIMEOUT, TFILTER_SUM, default_registry
from repro.transport.eventloop import EventLoop, SendQueueFull

_LEN = struct.Struct(">I")
RECV_TIMEOUT = 10.0


def send_frame(sock, packets):
    """Write one framed batch message to a raw socket."""
    payload = encode_batch(packets)
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _read_exact(sock, n, deadline):
    buf = b""
    while len(buf) < n:
        sock.settimeout(max(deadline - time.monotonic(), 0.01))
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed while reading frame")
        buf += chunk
    return buf


def recv_frames(sock, n, timeout=RECV_TIMEOUT):
    """Read *n* raw framed payloads from a socket."""
    deadline = time.monotonic() + timeout
    frames = []
    for _ in range(n):
        (length,) = _LEN.unpack(_read_exact(sock, _LEN.size, deadline))
        frames.append(_read_exact(sock, length, deadline))
    return frames


def recv_packets(sock, n, timeout=RECV_TIMEOUT):
    """Read batch frames off a socket until *n* packets have arrived."""
    deadline = time.monotonic() + timeout
    packets = []
    while len(packets) < n:
        (frame,) = recv_frames(sock, 1, timeout=deadline - time.monotonic())
        packets.extend(decode_batch(frame))
    return packets


def make_node(n_children, expected_ranks=None, name="node"):
    """A CommNode driven by one event loop over raw socketpairs.

    Returns ``(node, parent_sock, child_socks)`` — our test-side ends.
    """
    parent_ours, parent_theirs = socket.socketpair()
    node = CommNode(
        name,
        default_registry(),
        expected_ranks if expected_ranks is not None else n_children,
        parent_socket=parent_theirs,
    )
    child_socks = []
    for _ in range(n_children):
        ours, theirs = socket.socketpair()
        node.add_child_socket(theirs)
        child_socks.append(ours)
    return node, parent_ours, child_socks


def stop_node(node, parent_sock, child_socks):
    try:
        send_frame(parent_sock, [make_shutdown()])
    except OSError:
        pass
    node.join(timeout=5)
    for s in child_socks:
        s.close()
    parent_sock.close()
    assert not node.is_alive()


class TestSingleThread:
    def test_16_children_one_io_thread(self):
        """A comm node with 17 links (parent + 16 children) adds ONE thread."""
        before = set(threading.enumerate())
        node, parent, children = make_node(16)
        node.start()
        try:
            added = [t for t in threading.enumerate() if t not in before]
            assert added == [node]
            # The node is live: aggregate endpoint reports from all 16
            # children into one report at the parent.
            for i, sock in enumerate(children):
                send_frame(sock, [make_endpoint_report([i])])
            (report,) = recv_packets(parent, 1)
            (ranks,) = report.unpack()
            assert tuple(ranks) == tuple(range(16))
            assert [t for t in threading.enumerate() if t not in before] == [node]
        finally:
            stop_node(node, parent, children)

    def test_shutdown_reaches_children(self):
        node, parent, children = make_node(2)
        node.start()
        send_frame(parent, [make_shutdown()])
        for sock in children:
            (pkt,) = recv_packets(sock, 1)
            assert pkt.tag == make_shutdown().tag
        node.join(timeout=5)
        assert not node.is_alive()
        for s in children:
            s.close()
        parent.close()


class TestWideFanIn:
    def test_64_links_relay_up(self):
        """64 children funnel packets through one selector thread."""
        node, parent, children = make_node(64)
        node.start()
        try:
            for i, sock in enumerate(children):
                # Unknown stream: the node relays upstream unchanged.
                send_frame(sock, [Packet(77, 100, "%d", (i,), origin_rank=i)])
            packets = recv_packets(parent, 64)
            values = sorted(p.unpack()[0] for p in packets)
            assert values == list(range(64))
            assert node.loop.stats["frames_in"] >= 64
        finally:
            stop_node(node, parent, children)

    def test_fanin_batches_into_fewer_messages(self):
        """Bursty fan-in leaves as fewer, larger upstream messages."""
        node, parent, children = make_node(32)
        node.start()
        try:
            for i, sock in enumerate(children):
                send_frame(sock, [Packet(77, 100, "%d", (i,), origin_rank=i)])
            recv_packets(parent, 32)
            # Adaptive flushing must have coalesced at least some of
            # the 32 inbound packets into shared upstream messages.
            assert node.core.stats["messages_sent"] < 32
        finally:
            stop_node(node, parent, children)


class TestBackpressure:
    def test_send_queue_bound_raises(self):
        loop = EventLoop()
        a, b = socket.socketpair()
        # Tiny kernel buffers so the opportunistic inline write cannot
        # swallow the whole payload: a remainder must stay queued.
        a.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        b.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        link = loop.add_socket(a, max_send_bytes=1024)
        try:
            link.send(b"x" * (256 * 1024))  # empty queue accepts any one payload
            assert link.send_capacity() < 1024
            with pytest.raises(SendQueueFull):
                link.send(b"x" * 600)
        finally:
            b.close()
            loop._shutdown_selector()

    def test_flush_defers_then_recovers(self):
        """NodeCore.flush parks packets on a full link, then retries."""
        loop = EventLoop()
        a, b = socket.socketpair()
        a.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        b.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        link = loop.add_socket(a, max_send_bytes=2048)
        core = NodeCore("bp", default_registry(), 1)
        core.add_child(link)
        # Pre-fill the send queue past the kernel buffers (the inline
        # write takes a few KB; the rest stays queued) and queue a
        # downstream flood behind it.
        prefill = b"y" * (256 * 1024)
        link.send(prefill)
        core._handle_data_down(Packet(9, 100, "%s", ("z" * 600,)))
        core.flush()
        assert core.stats["send_queue_full"] == 1
        assert core.has_pending_output  # parked, not dropped
        assert core.stats["messages_dropped_on_close"] == 0
        # Start the loop: the queue drains into the socket, the parked
        # buffer flushes on the next idle pass — lossless backpressure.
        loop.bind(core)
        t = threading.Thread(target=loop.run, daemon=True)
        t.start()
        try:
            raw, batch = recv_frames(b, 2)
            assert raw == prefill
            (pkt,) = decode_batch(batch)
            assert pkt.unpack() == ("z" * 600,)
        finally:
            core.shutting_down = True
            loop.wake()
            t.join(timeout=5)
            b.close()
        assert not t.is_alive()
        assert not core.has_pending_output

    def test_oversized_message_still_leaves_empty_queue(self):
        """One message bigger than the bound departs when the queue is empty."""
        loop = EventLoop()
        a, b = socket.socketpair()
        link = loop.add_socket(a, max_send_bytes=1024)
        core = NodeCore("big", default_registry(), 1)
        core.add_child(link)
        core._handle_data_down(Packet(9, 100, "%s", ("w" * 5000,)))
        core.flush()
        assert core.stats["send_queue_full"] == 0
        assert not core.has_pending_output
        loop.bind(core)
        t = threading.Thread(target=loop.run, daemon=True)
        t.start()
        try:
            (pkt,) = recv_packets(b, 1)
            assert pkt.unpack() == ("w" * 5000,)
        finally:
            core.shutting_down = True
            loop.wake()
            t.join(timeout=5)
            b.close()


class TestTimeOutDeadline:
    def test_partial_wave_releases_on_deadline_without_spin(self):
        """A TimeOut stream fires at its deadline; the loop sleeps, not spins."""
        node, parent, children = make_node(2)
        node.start()
        try:
            for i, sock in enumerate(children):
                send_frame(sock, [make_endpoint_report([i])])
            recv_packets(parent, 1)  # aggregated endpoint report
            sync_timeout = 0.25
            send_frame(
                parent,
                [make_new_stream(5, [0, 1], SFILTER_TIMEOUT, TFILTER_SUM, sync_timeout)],
            )
            # The data frame below travels on a different socket than the
            # new_stream above; wait until the stream is registered so the
            # packet isn't relayed as unknown-stream traffic.
            reg_deadline = time.monotonic() + RECV_TIMEOUT
            while 5 not in node.core.streams:
                assert time.monotonic() < reg_deadline, "stream never registered"
                time.sleep(0.002)
            iters_before = node.loop.iterations
            start = time.monotonic()
            # Only child 0 contributes, so the wave can never complete:
            # the TimeOut criterion must release it at the deadline.
            send_frame(children[0], [Packet(5, 100, "%d", (3,), origin_rank=0)])
            (pkt,) = recv_packets(parent, 1)
            elapsed = time.monotonic() - start
            assert pkt.unpack() == (3,)
            # Never early (the wave clock starts at/after `start`), and
            # not meaningfully late either.
            assert elapsed >= sync_timeout - 0.01
            assert elapsed < sync_timeout + 0.5
            # The loop slept until the deadline: a 2 ms poll would need
            # ~125 iterations to cross 0.25 s.
            assert node.loop.iterations - iters_before < 40
        finally:
            stop_node(node, parent, children)


class TestAbruptClose:
    def test_peer_dies_mid_frame(self):
        """EOF halfway through a frame drops the link, not the node."""
        node, parent, children = make_node(2)
        node.start()
        try:
            dying, surviving = children
            # A frame header promising 100 bytes, but only 10 arrive.
            dying.sendall(_LEN.pack(100) + b"0123456789")
            time.sleep(0.05)
            dying.close()
            deadline = time.monotonic() + 5
            while len(node.core.children) != 1:
                assert time.monotonic() < deadline, "dead link never removed"
                time.sleep(0.01)
            # The surviving link still relays.
            send_frame(surviving, [Packet(7, 100, "%d", (42,))])
            (pkt,) = recv_packets(parent, 1)
            assert pkt.unpack() == (42,)
        finally:
            stop_node(node, parent, [s for s in children if s.fileno() != -1])

    def test_oversized_frame_header_closes_link(self):
        node, parent, children = make_node(1)
        node.start()
        try:
            children[0].sendall(_LEN.pack((1 << 30) + 1))
            # The node closes the poisoned link; we observe EOF.
            children[0].settimeout(5)
            assert children[0].recv(1) == b""
            deadline = time.monotonic() + 5
            while len(node.core.children) != 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
        finally:
            stop_node(node, parent, children)
