"""Shared-memory ring transport: SPSC rings, negotiation, channel ends.

The rings carry exactly the framed batches TCP does, so these tests
exercise the transport contract directly: framing round-trips across
wraparound, full-ring stall/credit flow control, orderly close flags,
the hello-extension negotiation (ACK, NAK, transparent TCP fallback),
and the passive :class:`ShmChannelEnd` used by front-/back-ends.
"""

import socket
import threading
import time

import pytest

from repro.transport.channel import Inbox
from repro.transport.shm import (
    DEFAULT_CAPACITY,
    ShmChannelEnd,
    ShmRing,
    accept_shm_offer,
    live_segments,
    offer_shm,
    shm_available,
)
from repro.transport.tcp import (
    TcpListener,
    tcp_connect_retry,
    tcp_connect_socket_ex,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def make_pair(capacity=4096):
    """A producer-view and consumer-view of one fresh ring."""
    producer = ShmRing.create(capacity)
    consumer = ShmRing.attach(producer.name, capacity)
    return producer, consumer


def destroy(*rings):
    for ring in rings:
        ring.close()
        ring.unlink()


class TestShmRing:
    def test_write_read_round_trip(self):
        prod, cons = make_pair()
        try:
            for payload in (b"a", b"hello world", b"\x00" * 100):
                written, was_empty = prod.try_write(payload)
                assert written
            frames, _ = cons.read_frames()
            assert frames == [b"a", b"hello world", b"\x00" * 100]
        finally:
            destroy(prod, cons)

    def test_first_write_reports_empty_transition(self):
        prod, cons = make_pair()
        try:
            _, was_empty = prod.try_write(b"x")
            assert was_empty  # doorbell needed: consumer may sleep
            _, was_empty = prod.try_write(b"y")
            assert not was_empty  # already signalled
        finally:
            destroy(prod, cons)

    def test_wraparound_preserves_frames(self):
        prod, cons = make_pair(capacity=256)
        try:
            # Drive the cursors far past one lap with odd-sized frames
            # so splits land at every offset.
            sent, received = [], []
            for i in range(200):
                payload = bytes([i % 251]) * (17 + i % 57)
                while not prod.try_write(payload)[0]:
                    received.extend(cons.read_frames()[0])
                sent.append(payload)
            while len(received) < len(sent):
                frames, _ = cons.read_frames()
                assert frames, "ring drained early"
                received.extend(frames)
            assert received == sent
        finally:
            destroy(prod, cons)

    def test_ring_fills_completely(self):
        # Monotonic cursors waste no slot: capacity bytes all usable.
        prod, cons = make_pair(capacity=128)
        try:
            written, _ = prod.try_write(b"x" * 124)  # 4 len + 124 = 128
            assert written
            assert not prod.try_write(b"y")[0]  # zero bytes free
            frames, _ = cons.read_frames()
            assert frames == [b"x" * 124]
            assert prod.try_write(b"y")[0]
        finally:
            destroy(prod, cons)

    def test_oversized_frame_raises(self):
        prod, cons = make_pair(capacity=128)
        try:
            with pytest.raises(ValueError):
                prod.try_write(b"z" * 125)  # can never fit: fail loudly
        finally:
            destroy(prod, cons)

    def test_stall_and_credit(self):
        prod, cons = make_pair(capacity=128)
        try:
            assert prod.try_write(b"x" * 124)[0]
            assert not prod.try_write(b"x" * 124)[0]  # stalled flag set
            frames, credit_due = cons.read_frames()
            assert frames and credit_due  # consumer owes a doorbell
            _, credit_due = cons.read_frames()
            assert not credit_due  # only once per stall
        finally:
            destroy(prod, cons)

    def test_orderly_close_flag(self):
        prod, cons = make_pair()
        try:
            prod.try_write(b"last")
            prod.mark_closed()
            assert cons.peer_closed
            frames, _ = cons.read_frames()
            assert frames == [b"last"]  # close never loses queued data
        finally:
            destroy(prod, cons)

    def test_attach_validates_capacity(self):
        prod = ShmRing.create(256)
        try:
            with pytest.raises(ValueError):
                ShmRing.attach(prod.name, 1 << 20)
        finally:
            destroy(prod)

    def test_live_segments_drains_after_cleanup(self):
        prod, cons = make_pair()
        assert prod.name in live_segments()
        destroy(prod, cons)
        assert prod.name not in live_segments()


def release(frames):
    """Drop ring-aliasing views so the segment can unmap cleanly."""
    for f in frames:
        if type(f) is memoryview:
            f.release()
    frames.clear()


class TestZeroCopyRead:
    def test_inplace_frames_alias_ring_memory(self):
        prod, cons = make_pair()
        try:
            for payload in (b"a" * 10, b"b" * 20):
                assert prod.try_write(payload)[0]
            frames = cons.read_frames_inplace()
            assert [bytes(f) for f in frames] == [b"a" * 10, b"b" * 20]
            # Contiguous frames are memoryviews straight into the ring.
            assert all(type(f) is memoryview for f in frames)
            release(frames)
        finally:
            cons.commit_read()
            destroy(prod, cons)

    def test_head_unpublished_until_commit(self):
        prod, cons = make_pair(capacity=128)
        try:
            assert prod.try_write(b"x" * 60)[0]
            frames = cons.read_frames_inplace()
            assert len(frames) == 1
            # The producer still sees a nearly-full ring: the consumed
            # bytes stay reserved until commit_read publishes the head.
            assert not prod.try_write(b"y" * 100)[0]
            release(frames)
            cons.commit_read()
            assert prod.try_write(b"y" * 100)[0]
        finally:
            destroy(prod, cons)

    def test_commit_reports_credit_after_stall(self):
        prod, cons = make_pair(capacity=128)
        try:
            assert prod.try_write(b"x" * 124)[0]
            assert not prod.try_write(b"x" * 124)[0]  # producer stalls
            release(cons.read_frames_inplace())
            assert cons.commit_read()  # freed a stalled producer
            assert not cons.commit_read()  # only once per stall
        finally:
            destroy(prod, cons)

    def test_wrapping_frame_stitched_to_bytes(self):
        prod, cons = make_pair(capacity=256)
        try:
            wrapped = 0
            for i in range(60):
                payload = bytes([i]) * 37
                while not prod.try_write(payload)[0]:
                    release(cons.read_frames_inplace())
                    cons.commit_read()
                frames = cons.read_frames_inplace()
                for f in frames:
                    assert bytes(f) == bytes([bytes(f)[0]]) * 37
                    if type(f) is bytes:
                        wrapped += 1
                release(frames)
                cons.commit_read()
            assert wrapped  # the wrap point was exercised
        finally:
            destroy(prod, cons)

    def test_interleaves_with_copying_read_after_commit(self):
        prod, cons = make_pair()
        try:
            prod.try_write(b"one")
            views = cons.read_frames_inplace()
            assert [bytes(v) for v in views] == [b"one"]
            release(views)
            cons.commit_read()
            prod.try_write(b"two")
            frames, _ = cons.read_frames()
            assert frames == [b"two"]
        finally:
            destroy(prod, cons)


class TestZeroCopyEndToEnd:
    """Inbound shm frames reach the comm node without leaving the ring."""

    def test_chunked_wave_over_shm_counts_zero_copy_frames(self):
        from repro.core import Network
        from repro.filters import TFILTER_SUM
        from repro.topology import balanced_tree

        # Every link co-located → negotiated up to shared memory.
        net = Network(balanced_tree(2, 2, hosts=["h0"]), transport="process")
        try:
            stats = net.stats()
            assert stats["0:front-end"]['links{kind="shm"}'] == 2

            st = net.new_stream(
                net.get_broadcast_communicator(),
                transform=TFILTER_SUM,
                chunk_bytes=2048,
            )
            payload = tuple(float(i % 89) for i in range(1024))
            st.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=20.0)
                bstream.send("%alf", payload)
            result = st.recv(timeout=20.0)
            assert result.values == (tuple(v * 4 for v in payload),)

            # The comm nodes' event loops delivered ring frames as
            # aliasing memoryviews, not copies.
            stats = net.stats()
            zero_copy = sum(
                entry.get("loop_shm_frames_zero_copy", 0)
                for key, entry in stats.items()
                if isinstance(entry, dict) and key not in ("recovery", "meta")
            )
            assert zero_copy > 0
        finally:
            net.shutdown()


class TestNegotiation:
    def test_offer_accepted_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            result = {}
            t = threading.Thread(
                target=lambda: result.update(pair=offer_shm(a, 7, 4096))
            )
            t.start()
            # Acceptor: consume the flagged hello, then the offer.
            hello = int.from_bytes(b.recv(4), "big")
            assert hello & 0x8000_0000
            acc = accept_shm_offer(b)
            t.join()
            tx, rx = result["pair"]
            atx, arx = acc
            # Cross-wiring: connector tx is acceptor rx.
            tx.try_write(b"ping")
            assert arx.read_frames()[0] == [b"ping"]
            atx.try_write(b"pong")
            assert rx.read_frames()[0] == [b"pong"]
            destroy(tx, rx, atx, arx)
        finally:
            a.close()
            b.close()

    def test_offer_refused_falls_back(self):
        a, b = socket.socketpair()
        try:
            result = {}
            t = threading.Thread(
                target=lambda: result.update(pair=offer_shm(a, 7, 4096))
            )
            t.start()
            b.recv(4)
            assert accept_shm_offer(b, allow=False) is None
            t.join()
            assert result["pair"] is None  # connector degraded to TCP
            assert live_segments() == []  # offered rings were destroyed
        finally:
            a.close()
            b.close()

    def test_listener_upgrade_end_to_end(self):
        inbox = Inbox()
        listener = TcpListener(inbox)
        try:
            peer_inbox = Inbox()
            result = {}

            def connect():
                result["end"] = tcp_connect_retry(
                    listener.address, peer_inbox, shm=True
                )

            t = threading.Thread(target=connect)
            t.start()
            server_end = listener.accept(timeout=10)
            t.join()
            client_end = result["end"]
            assert server_end.transport_kind == "shm"
            assert client_end.transport_kind == "shm"
            client_end.send(b"up")
            link_id, payload = inbox.get(timeout=5)
            assert payload == b"up"
            server_end.send(b"down")
            _, payload = peer_inbox.get(timeout=5)
            assert payload == b"down"
            client_end.close()
            # Server side observes the death as a None delivery.
            _, payload = inbox.get(timeout=5)
            assert payload is None
            server_end.close()
        finally:
            listener.close()
        deadline = time.monotonic() + 5
        while live_segments() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert live_segments() == []

    def test_plain_connect_unaffected(self):
        inbox = Inbox()
        listener = TcpListener(inbox)
        try:
            peer_inbox = Inbox()
            result = {}
            t = threading.Thread(
                target=lambda: result.update(
                    end=tcp_connect_retry(listener.address, peer_inbox)
                )
            )
            t.start()
            server_end = listener.accept(timeout=10)
            t.join()
            assert server_end.transport_kind == "tcp"
            assert result["end"].transport_kind == "tcp"
            result["end"].close()
            server_end.close()
        finally:
            listener.close()

    def test_connect_ex_refused_by_accept_socket(self):
        # accept_socket (event-loop path without shm) NAKs the offer;
        # the connector must come out with a plain TCP socket.
        inbox = Inbox()
        listener = TcpListener(inbox)
        try:
            result = {}
            t = threading.Thread(
                target=lambda: result.update(
                    pair=tcp_connect_socket_ex(listener.address, shm=True)
                )
            )
            t.start()
            sock = listener.accept_socket(timeout=10)
            t.join()
            conn_sock, rings = result["pair"]
            assert rings is None
            conn_sock.close()
            sock.close()
            assert live_segments() == []
        finally:
            listener.close()


class TestShmChannelEnd:
    def make_ends(self):
        a, b = socket.socketpair()
        a.setblocking(False)
        b.setblocking(False)
        # Build both directions by hand: two rings, crossed.
        r1 = ShmRing.create(1 << 16)
        r2 = ShmRing.create(1 << 16)
        left_inbox, right_inbox = Inbox(), Inbox()
        left = ShmChannelEnd(
            a,
            ShmRing.attach(r1.name, 1 << 16),
            ShmRing.attach(r2.name, 1 << 16),
            1,
            left_inbox,
        )
        right = ShmChannelEnd(b, r2, r1, 2, right_inbox, owner=True)
        return left, right, left_inbox, right_inbox

    def test_bidirectional_traffic(self):
        left, right, left_inbox, right_inbox = self.make_ends()
        left.send(b"to-right")
        _, payload = right_inbox.get(timeout=5)
        assert payload == b"to-right"
        right.send(b"to-left")
        _, payload = left_inbox.get(timeout=5)
        assert payload == b"to-left"
        left.close()
        _, payload = right_inbox.get(timeout=5)
        assert payload is None
        right.close()
        deadline = time.monotonic() + 5
        while live_segments() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert live_segments() == []

    def test_burst_larger_than_ring(self):
        # 2 MiB of frames through 64 KiB rings: the sender must block
        # on ring space and the reader's credits must keep it moving.
        left, right, _, right_inbox = self.make_ends()
        payload = b"q" * 8192
        n = 256

        def pump():
            for _ in range(n):
                left.send(payload)

        t = threading.Thread(target=pump)
        t.start()
        got = 0
        while got < n:
            _, frame = right_inbox.get(timeout=10)
            assert frame == payload
            got += 1
        t.join()
        left.close()
        right.close()
