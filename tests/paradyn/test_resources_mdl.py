"""Tests for the synthetic executable model and the mini-MDL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paradyn.mdl import (
    MDLError,
    MetricDefinition,
    default_metrics,
    parse_mdl,
    serialize_mdl,
)
from repro.paradyn.resources import (
    SMG2000_FUNCTIONS,
    SMG2000_TEXT_BYTES,
    ProcessResources,
    synthetic_executable,
)


class TestSyntheticExecutable:
    def test_smg2000_shape(self):
        """The paper's workload: ≈ 434 functions in ≈ 290 KB."""
        exe = synthetic_executable()
        assert len(exe.functions) == SMG2000_FUNCTIONS == 434
        assert exe.text_bytes == pytest.approx(SMG2000_TEXT_BYTES, rel=0.05)

    def test_deterministic(self):
        assert (
            synthetic_executable().code_checksum()
            == synthetic_executable().code_checksum()
        )
        assert (
            synthetic_executable().callgraph_checksum()
            == synthetic_executable().callgraph_checksum()
        )

    def test_variants_differ(self):
        a = synthetic_executable(variant=0)
        b = synthetic_executable(variant=1)
        assert a.code_checksum() != b.code_checksum()
        assert len(a.functions) == len(b.functions)

    def test_unique_addresses(self):
        exe = synthetic_executable()
        addrs = [f.address for f in exe.functions]
        assert len(set(addrs)) == len(addrs)

    def test_call_graph_references_real_functions(self):
        exe = synthetic_executable(n_functions=50)
        names = {f.name for f in exe.functions}
        for caller, callees in exe.call_graph.items():
            assert caller in names
            assert all(c in names for c in callees)

    def test_resource_paths(self):
        exe = synthetic_executable(n_functions=5, n_modules=1)
        f = exe.functions[0]
        assert f.resource_path.startswith("/Code/")
        assert exe.modules[0].resource_path == f"/Code/{exe.modules[0].name}"

    def test_module_partitioning(self):
        exe = synthetic_executable(n_functions=10, n_modules=3)
        assert len(exe.modules) == 3
        assert sum(len(m.functions) for m in exe.modules) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_executable(n_functions=0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 300), st.integers(1, 20))
    def test_arbitrary_shapes(self, n_functions, n_modules):
        exe = synthetic_executable(n_functions=n_functions, n_modules=n_modules)
        assert len(exe.functions) == n_functions


class TestProcessResources:
    def test_report_roundtrip(self):
        p = ProcessResources("nodeX", 4242, 7, "./smg2000 -n 64", False)
        q = ProcessResources.decode_report(p.encode_report())
        assert q == p

    def test_machine_resource_paths(self):
        p = ProcessResources("h", 1, 0, "cmd")
        paths = p.machine_resource_paths()
        assert paths[0] == "/Machine/h"
        assert len(paths) == 3


class TestMDL:
    def test_parse_basic(self):
        text = 'metric cpu_time { units "seconds"; style EventCounter; aggregate sum; }'
        (m,) = parse_mdl(text)
        assert m.name == "cpu_time"
        assert m.units == "seconds"
        assert not m.internal

    def test_roundtrip(self):
        metrics = default_metrics(10)
        assert parse_mdl(serialize_mdl(metrics)) == metrics

    def test_comments_and_whitespace(self):
        text = """
        # leading comment
        metric io_wait {
            units "seconds" ;   # trailing comment
            aggregate max ;
        }
        """
        (m,) = parse_mdl(text)
        assert m.aggregate == "max"
        assert m.style == "EventCounter"  # default

    def test_internal_flag(self):
        text = 'metric pause { units "s"; internal true; }'
        (m,) = parse_mdl(text)
        assert m.internal

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "metric {}",
            'metric m { units "x" }',  # missing ;
            'metric m { units "x"; bogus y; }',
            "metric m { style EventCounter; }",  # missing units
            'metric m { units "x"; } metric m { units "x"; }',  # duplicate
            'metric m { units "x"; style Nope; }',
            'metric m { units "x"; aggregate median; }',
            "notmetric m {}",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(MDLError):
            parse_mdl(bad)

    def test_metric_definition_validation(self):
        with pytest.raises(MDLError):
            MetricDefinition("bad name", "u")
        with pytest.raises(MDLError):
            MetricDefinition("ok", "u", style="Wrong")

    def test_default_metrics_sized(self):
        assert len(default_metrics(3)) == 3
        assert len(default_metrics(15)) == 15
        names = [m.name for m in default_metrics(15)]
        assert len(set(names)) == 15
