"""Tests for the equivalence-class binning filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import Packet
from repro.filters.base import FilterError, FilterState
from repro.paradyn.eqclass import EquivalenceClassFilter, EquivalenceClasses

filt = EquivalenceClassFilter()


def leaf(checksum, rank):
    return Packet(1, 0, "%uld %ud", (checksum, rank), origin_rank=rank)


class TestFilter:
    def test_single_class(self):
        out = filt([leaf(111, 0), leaf(111, 1), leaf(111, 2)], FilterState())
        classes = EquivalenceClasses.from_packet(out[0])
        assert classes.num_classes == 1
        assert classes.classes[111] == (0, 1, 2)

    def test_multiple_classes(self):
        out = filt([leaf(1, 0), leaf(2, 1), leaf(1, 2)], FilterState())
        classes = EquivalenceClasses.from_packet(out[0])
        assert classes.num_classes == 2
        assert classes.classes[1] == (0, 2)
        assert classes.classes[2] == (1,)

    def test_tree_composition(self):
        """Merging partial class sets equals flat classification."""
        left = filt([leaf(1, 0), leaf(2, 1)], FilterState())
        right = filt([leaf(1, 2), leaf(3, 3)], FilterState())
        merged = EquivalenceClasses.from_packet(
            filt(left + right, FilterState())[0]
        )
        flat = EquivalenceClasses.from_packet(
            filt([leaf(1, 0), leaf(2, 1), leaf(1, 2), leaf(3, 3)], FilterState())[0]
        )
        assert merged.classes == flat.classes

    def test_mixed_leaf_and_partial_inputs(self):
        partial = filt([leaf(5, 0)], FilterState())
        out = filt(partial + [leaf(5, 1), leaf(6, 2)], FilterState())
        classes = EquivalenceClasses.from_packet(out[0])
        assert classes.classes == {5: (0, 1), 6: (2,)}

    def test_rejects_wrong_format(self):
        with pytest.raises(FilterError):
            filt([Packet(1, 0, "%d", (1,))], FilterState())

    def test_empty_wave(self):
        assert filt([], FilterState()) == []

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 200)),
            min_size=1,
            max_size=40,
            unique_by=lambda t: t[1],
        ),
        st.integers(1, 5),
    )
    def test_partition_property(self, pairs, chunks):
        """Every rank lands in exactly the class of its checksum, no
        matter how the tree splits the wave."""
        size = max(1, len(pairs) // chunks)
        partials = []
        for i in range(0, len(pairs), size):
            wave = [leaf(c, r) for c, r in pairs[i : i + size]]
            partials.extend(filt(wave, FilterState()))
        classes = EquivalenceClasses.from_packet(filt(partials, FilterState())[0])
        assert classes.num_members == len(pairs)
        for checksum, rank in pairs:
            assert classes.class_of(rank) == checksum


class TestEquivalenceClasses:
    def test_representatives_lowest_rank(self):
        ec = EquivalenceClasses({10: (3, 1, 7), 20: (5,)})
        # N.B. construction via dict: members as given.
        assert ec.representative(20) == 5

    def test_representatives_ordered_by_checksum(self):
        ec = EquivalenceClasses({30: (9,), 10: (2,), 20: (4,)})
        assert ec.representatives() == [2, 4, 9]

    def test_packet_values_roundtrip(self):
        ec = EquivalenceClasses({7: (0, 3), 9: (1,)})
        again = EquivalenceClasses.from_packet_values(*ec.to_packet_values())
        assert again.classes == ec.classes

    def test_codec_validation(self):
        with pytest.raises(FilterError):
            EquivalenceClasses.from_packet_values((1, 2), (1,), (0,))
        with pytest.raises(FilterError):
            EquivalenceClasses.from_packet_values((1,), (2,), (0,))
        with pytest.raises(FilterError):
            EquivalenceClasses.from_packet_values((1, 1), (1, 1), (0, 1))

    def test_class_of_unknown(self):
        with pytest.raises(KeyError):
            EquivalenceClasses({1: (0,)}).class_of(99)

    def test_merge_unions_members(self):
        a = EquivalenceClasses({1: (0, 1)})
        b = EquivalenceClasses({1: (1, 2), 2: (3,)})
        merged = a.merged_with(b)
        assert merged.classes == {1: (0, 1, 2), 2: (3,)}

    def test_counts(self):
        ec = EquivalenceClasses({1: (0, 1), 2: (2,)})
        assert ec.num_classes == 2
        assert ec.num_members == 3
