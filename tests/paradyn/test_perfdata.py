"""Tests for time-aligned performance data aggregation (Figures 5–6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import Packet
from repro.filters.base import FilterError, FilterState
from repro.paradyn.perfdata import (
    SAMPLE_FMT,
    DataSample,
    OrdinalAggregator,
    PerformanceDataFilter,
    TimeAlignedAggregator,
)


class TestDataSample:
    def test_basic(self):
        s = DataSample(2.0, 0.0, 4.0)
        assert s.duration == 4.0
        assert s.rate == 0.5

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            DataSample(1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            DataSample(1.0, 2.0, 1.0)

    def test_split_conserves_value(self):
        s = DataSample(10.0, 0.0, 4.0)
        left, right = s.split_at(1.0)
        assert left.value + right.value == pytest.approx(10.0)
        assert left == DataSample(2.5, 0.0, 1.0)
        assert right == DataSample(7.5, 1.0, 4.0)

    def test_split_bounds(self):
        s = DataSample(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            s.split_at(0.0)
        with pytest.raises(ValueError):
            s.split_at(1.5)

    def test_packet_roundtrip(self):
        s = DataSample(3.5, 1.25, 2.5)
        p = s.to_packet(9, 1101, origin_rank=4)
        assert p.fmt == SAMPLE_FMT
        assert DataSample.from_packet(p) == s

    def test_from_wrong_packet(self):
        with pytest.raises(FilterError):
            DataSample.from_packet(Packet(1, 0, "%d", (1,)))


class TestTimeAlignedAggregator:
    def test_aligned_inputs_pass_through(self):
        agg = TimeAlignedAggregator(2, interval=1.0)
        assert agg.add_sample(0, DataSample(1.0, 0.0, 1.0)) == []
        out = agg.add_sample(1, DataSample(2.0, 0.0, 1.0))
        assert out == [DataSample(3.0, 0.0, 1.0)]

    def test_figure6_split_attribution(self):
        """A sample straddling the output interval is split
        proportionally (Figure 6c) with no value lost."""
        agg = TimeAlignedAggregator(1, interval=1.0)
        out = agg.add_sample(0, DataSample(4.0, 0.5, 2.5))
        # Covers [0.5, 2.5): fills [0.5,1) only after [0,0.5) exists — but
        # this input starts at 0.5 > covered_until=0, so nothing emits.
        assert out == []
        # Provide the missing head [0, 0.5).
        agg2 = TimeAlignedAggregator(1, interval=1.0)
        agg2.add_sample(0, DataSample(1.0, 0.0, 0.5))
        out = agg2.add_sample(0, DataSample(4.0, 0.5, 2.5))
        # Interval [0,1): 1.0 + 4.0 * (0.5/2.0) = 2.0; interval [1,2): 4*0.5=2.0
        assert out == [DataSample(2.0, 0.0, 1.0), DataSample(2.0, 1.0, 2.0)]

    def test_misaligned_rates(self):
        """One input samples at 2x the rate of the other."""
        agg = TimeAlignedAggregator(2, interval=1.0)
        outs = []
        # Input 0: [0,0.5), [0.5,1.0) each value 1; input 1: [0,1) value 10
        outs += agg.add_sample(0, DataSample(1.0, 0.0, 0.5))
        outs += agg.add_sample(0, DataSample(1.0, 0.5, 1.0))
        assert outs == []
        outs += agg.add_sample(1, DataSample(10.0, 0.0, 1.0))
        assert outs == [DataSample(12.0, 0.0, 1.0)]

    def test_skewed_clocks_split_correctly(self):
        """Samples shifted by clock skew are attributed proportionally —
        the Figure 5b behaviour that ordinal aggregation lacks."""
        agg = TimeAlignedAggregator(2, interval=1.0)
        outs = []
        outs += agg.add_sample(0, DataSample(1.0, 0.0, 1.0))
        outs += agg.add_sample(0, DataSample(1.0, 1.0, 2.0))
        # Input 1 shifted +0.25s, constant rate 1 value/interval.
        outs += agg.add_sample(1, DataSample(1.0, 0.25, 1.25))
        assert outs == []  # [0, 0.25) of input 1 missing: gap detected
        agg2 = TimeAlignedAggregator(2, interval=1.0)
        agg2.add_sample(0, DataSample(1.0, 0.0, 1.0))
        agg2.add_sample(0, DataSample(1.0, 1.0, 2.0))
        agg2.add_sample(1, DataSample(0.25, 0.0, 0.25))
        outs = agg2.add_sample(1, DataSample(1.0, 0.25, 1.25))
        assert len(outs) == 1
        # interval [0,1): input0=1.0, input1=0.25 + 1.0*0.75 = 1.0
        assert outs[0].value == pytest.approx(2.0)

    def test_multiple_intervals_from_one_sample(self):
        agg = TimeAlignedAggregator(1, interval=1.0)
        out = agg.add_sample(0, DataSample(6.0, 0.0, 3.0))
        assert out == [
            DataSample(2.0, 0.0, 1.0),
            DataSample(2.0, 1.0, 2.0),
            DataSample(2.0, 2.0, 3.0),
        ]

    def test_old_samples_dropped(self):
        agg = TimeAlignedAggregator(1, interval=1.0, start_time=10.0)
        assert agg.add_sample(0, DataSample(5.0, 0.0, 1.0)) == []
        assert agg.pending_value == 0.0

    def test_overlapping_samples_rejected(self):
        agg = TimeAlignedAggregator(1, interval=1.0)
        agg.add_sample(0, DataSample(1.0, 0.0, 1.0))
        # queue is drained; feed two overlapping in sequence
        agg.add_sample(0, DataSample(1.0, 1.0, 3.0))
        with pytest.raises(ValueError):
            agg.add_sample(0, DataSample(1.0, 2.0, 4.0))

    def test_reduce_ops(self):
        for op, expected in [("sum", 3.0), ("avg", 1.5), ("min", 1.0), ("max", 2.0)]:
            agg = TimeAlignedAggregator(2, interval=1.0, op=op)
            agg.add_sample(0, DataSample(1.0, 0.0, 1.0))
            out = agg.add_sample(1, DataSample(2.0, 0.0, 1.0))
            assert out[0].value == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeAlignedAggregator(0, 1.0)
        with pytest.raises(ValueError):
            TimeAlignedAggregator(1, 0.0)
        with pytest.raises(ValueError):
            TimeAlignedAggregator(1, 1.0, op="median")
        agg = TimeAlignedAggregator(1, 1.0)
        with pytest.raises(IndexError):
            agg.add_sample(5, DataSample(1.0, 0.0, 1.0))

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),  # input lane
                st.floats(0.01, 5.0, allow_nan=False),  # duration
                st.floats(0, 100, allow_nan=False),  # value
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_no_lost_performance_data(self, moves):
        """The paper's explicit claim: 'there is no lost performance
        data due to round-off issues.'  emitted (from sum-reduction)
        + still-pending == everything fed in, always."""
        agg = TimeAlignedAggregator(3, interval=0.7, op="sum")
        ends = [0.0, 0.0, 0.0]
        fed = 0.0
        emitted = 0.0
        for lane, dur, value in moves:
            start = ends[lane]
            ends[lane] = start + dur
            fed += value
            for out in agg.add_sample(lane, DataSample(value, start, ends[lane])):
                emitted += out.value
        assert emitted + agg.pending_value == pytest.approx(fed, rel=1e-9, abs=1e-9)

    def test_output_interval_advances(self):
        agg = TimeAlignedAggregator(1, interval=2.0)
        assert agg.output_interval == (0.0, 2.0)
        agg.add_sample(0, DataSample(1.0, 0.0, 2.0))
        assert agg.output_interval == (2.0, 4.0)


class TestOrdinalAggregator:
    def test_positional_combination(self):
        agg = OrdinalAggregator(2)
        agg.add_sample(0, DataSample(1.0, 0.0, 1.0))
        out = agg.add_sample(1, DataSample(2.0, 10.0, 11.0))
        assert len(out) == 1
        assert out[0].value == 3.0
        # Envelope interval: mixes [0,1) with [10,11) — the Figure 5a flaw.
        assert (out[0].start, out[0].end) == (0.0, 11.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OrdinalAggregator(0)
        with pytest.raises(ValueError):
            OrdinalAggregator(1, op="nope")


class TestPerformanceDataFilter:
    def wave(self, *samples, stream=3):
        return [
            s.to_packet(stream, 1101, origin_rank=i) for i, s in enumerate(samples)
        ]

    def test_filter_over_waves(self):
        filt = PerformanceDataFilter(interval=1.0, op="sum")
        state = FilterState(n_children=2)
        out = filt(
            self.wave(DataSample(1.0, 0.0, 1.0), DataSample(2.0, 0.0, 1.0)), state
        )
        assert len(out) == 1
        assert DataSample.from_packet(out[0]) == DataSample(3.0, 0.0, 1.0)

    def test_state_persists_between_waves(self):
        filt = PerformanceDataFilter(interval=1.0)
        state = FilterState(n_children=2)
        out = filt(
            self.wave(DataSample(1.0, 0.0, 0.5), DataSample(1.0, 0.0, 1.0)), state
        )
        assert out == []
        out = filt(
            self.wave(DataSample(1.0, 0.5, 1.0), DataSample(1.0, 1.0, 2.0)), state
        )
        assert len(out) == 1
        assert DataSample.from_packet(out[0]).value == pytest.approx(3.0)

    def test_oversized_wave_rejected(self):
        filt = PerformanceDataFilter(interval=1.0)
        state = FilterState(n_children=1)
        filt(self.wave(DataSample(1.0, 0.0, 1.0)), state)
        with pytest.raises(FilterError):
            filt(
                self.wave(DataSample(1.0, 1.0, 2.0), DataSample(1.0, 0.0, 1.0)),
                state,
            )

    def test_empty_wave(self):
        assert PerformanceDataFilter()([], FilterState()) == []
