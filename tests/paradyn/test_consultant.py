"""Tests for the mini Performance Consultant over MRNet subset streams."""

import pytest

from repro.core import Network
from repro.paradyn import (
    ParadynDaemon,
    ParadynFrontEnd,
    synthetic_executable,
)
from repro.paradyn.consultant import PerformanceConsultant
from repro.topology import balanced_tree_for


@pytest.fixture
def tool():
    net = Network(balanced_tree_for(4, 16))
    exe = synthetic_executable(n_functions=20)
    daemons = [
        ParadynDaemon(net.backends[r], exe) for r in sorted(net.backends)
    ]
    fe = ParadynFrontEnd(net)
    yield net, fe, daemons
    net.shutdown()


def plant(daemons, metric, culprits, hot=9.0, cold=0.5):
    for d in daemons:
        d.set_rate(metric, hot if d.rank in culprits else cold)


class TestSearch:
    def test_finds_single_culprit(self, tool):
        net, fe, daemons = tool
        plant(daemons, "cpu_time", {11})
        pc = PerformanceConsultant(fe)
        res = pc.find_culprits(daemons, "cpu_time", threshold=5.0)
        assert res.culprits == [11]

    def test_finds_multiple_culprits(self, tool):
        net, fe, daemons = tool
        plant(daemons, "sync_wait", {0, 7, 15})
        pc = PerformanceConsultant(fe)
        res = pc.find_culprits(daemons, "sync_wait", threshold=5.0)
        assert res.culprits == [0, 7, 15]

    def test_no_culprits_one_query(self, tool):
        net, fe, daemons = tool
        plant(daemons, "io_wait", set())
        pc = PerformanceConsultant(fe)
        res = pc.find_culprits(daemons, "io_wait", threshold=5.0)
        assert res.culprits == []
        # The whole machine tested negative with a single aggregate query.
        assert res.queries == 1

    def test_query_count_logarithmic_for_sparse_culprits(self, tool):
        """The scalability point: k culprits cost O(k log n) aggregate
        queries, far fewer than one per daemon."""
        net, fe, daemons = tool
        plant(daemons, "cpu_time", {5})
        pc = PerformanceConsultant(fe)
        res = pc.find_culprits(daemons, "cpu_time", threshold=5.0)
        direct = pc.direct_scan(daemons, "cpu_time", threshold=5.0)
        assert res.culprits == direct.culprits == [5]
        assert res.queries <= 2 * 4 + 1  # ~2·log2(16) + root
        assert direct.queries == 16
        assert res.queries < direct.queries

    def test_all_culprits_degenerates_gracefully(self, tool):
        net, fe, daemons = tool
        plant(daemons, "cpu_time", set(range(16)))
        pc = PerformanceConsultant(fe)
        res = pc.find_culprits(daemons, "cpu_time", threshold=5.0)
        assert res.culprits == list(range(16))

    def test_trace_records_refinement(self, tool):
        net, fe, daemons = tool
        plant(daemons, "cpu_time", {3})
        pc = PerformanceConsultant(fe)
        res = pc.find_culprits(daemons, "cpu_time", threshold=5.0)
        ranks_tested, root_max = res.trace[0]
        assert len(ranks_tested) == 16
        assert root_max == pytest.approx(9.0)
        # Groups shrink along the trace.
        sizes = [len(r) for r, _ in res.trace]
        assert sizes[0] == max(sizes)

    def test_unqueried_metric_reads_zero(self, tool):
        net, fe, daemons = tool
        pc = PerformanceConsultant(fe)
        res = pc.find_culprits(daemons, "never_set", threshold=0.1)
        assert res.culprits == []


class TestTwoAxisSearch:
    def test_why_then_where(self, tool):
        """Metric-axis triage first, machine-axis refinement only for
        hypotheses that tested true."""
        net, fe, daemons = tool
        plant(daemons, "sync_wait", {4, 12})
        plant(daemons, "io_wait", set())          # healthy everywhere
        plant(daemons, "cpu_time", {7}, hot=9.0)  # one cpu hot spot
        pc = PerformanceConsultant(fe)
        results = pc.search_hypotheses(
            daemons,
            {"sync_wait": 5.0, "io_wait": 5.0, "cpu_time": 5.0},
        )
        assert results["sync_wait"].culprits == [4, 12]
        assert results["io_wait"].culprits == []
        assert results["cpu_time"].culprits == [7]
        # The false hypothesis cost exactly one aggregate query.
        assert results["io_wait"].queries == 1

    def test_all_false_hypotheses_cost_one_query_each(self, tool):
        net, fe, daemons = tool
        pc = PerformanceConsultant(fe)
        results = pc.search_hypotheses(
            daemons, {"sync_wait": 5.0, "io_wait": 5.0}
        )
        assert all(r.culprits == [] for r in results.values())
        assert all(r.queries == 1 for r in results.values())
