"""Tests for clock-skew detection and the start-up latency model."""

import numpy as np
import pytest

from repro.paradyn.clockskew import measure_local_skew, run_skew_experiment
from repro.paradyn.startup import ACTIVITIES, simulate_startup
from repro.sim.clocks import ClockSimParams, JitteredLink, SkewedClock
from repro.topology import balanced_tree, balanced_tree_for


class TestLocalSkewMeasurement:
    def test_exact_in_noise_free_world(self):
        """With symmetric, jitter-free links the estimate is exact."""
        rng = np.random.default_rng(0)
        link = JitteredLink(rng, base=100e-6, jitter=0.0, asymmetry=0.0)
        parent, child = SkewedClock(0.002), SkewedClock(-0.003)
        est = measure_local_skew(parent, child, link, trials=5)
        assert est == pytest.approx(child.offset - parent.offset, abs=1e-12)

    def test_asymmetry_bounds_error(self):
        rng = np.random.default_rng(1)
        base, asym = 100e-6, 0.5
        link = JitteredLink(rng, base=base, jitter=0.0, asymmetry=asym)
        parent, child = SkewedClock(0.0), SkewedClock(0.004)
        est = measure_local_skew(parent, child, link, trials=3)
        assert abs(est - 0.004) <= base * asym / 2 + 1e-12

    def test_more_trials_no_worse_min_rtt(self):
        rng = np.random.default_rng(2)
        link = JitteredLink(rng, 100e-6, 200e-6, 0.0)
        parent, child = SkewedClock(0.0), SkewedClock(0.005)
        errs1 = abs(measure_local_skew(parent, child, link, 1) - 0.005)
        errs50 = abs(measure_local_skew(parent, child, link, 50) - 0.005)
        assert errs50 <= errs1 + 1e-4

    def test_validation(self):
        rng = np.random.default_rng(0)
        link = JitteredLink(rng, 1e-4, 0.0, 0.0)
        with pytest.raises(ValueError):
            measure_local_skew(SkewedClock(0), SkewedClock(0), link, trials=0)


class TestSkewExperiment:
    def test_paper_anchor_shape(self):
        """§4.2.1 (64 daemons, 4-way/3-level): MRNet ≈ 10.5 % average
        error vs ≈ 17.5 % for direct; MRNet wins."""
        mrnet_means, direct_means = [], []
        for seed in range(8):
            res = run_skew_experiment(balanced_tree(4, 3), seed=seed)
            mrnet_means.append(res.summary("mrnet")[0])
            direct_means.append(res.summary("direct")[0])
        m, d = np.mean(mrnet_means), np.mean(direct_means)
        assert m < d, "tree-based scheme must beat direct communication"
        assert 5 < m < 18
        assert 10 < d < 26

    def test_all_daemons_measured(self):
        res = run_skew_experiment(balanced_tree(4, 3), seed=0)
        assert len(res.true_skew) == 64
        assert set(res.mrnet_skew) == set(res.direct_skew) == set(res.true_skew)

    def test_noise_free_cumulative_sums_exact(self):
        """Phase-2 induction recovers exact skews without jitter."""
        params = ClockSimParams(
            local_jitter=0.0, direct_jitter=0.0, asymmetry=0.0
        )
        res = run_skew_experiment(balanced_tree(2, 3), params=params, seed=3)
        for rank, true in res.true_skew.items():
            assert res.mrnet_skew[rank] == pytest.approx(true, abs=1e-12)
            assert res.direct_skew[rank] == pytest.approx(true, abs=1e-12)

    def test_deterministic_given_seed(self):
        a = run_skew_experiment(balanced_tree(2, 2), seed=7)
        b = run_skew_experiment(balanced_tree(2, 2), seed=7)
        assert a.mrnet_skew == b.mrnet_skew
        assert a.direct_skew == b.direct_skew


class TestStartupModel:
    def test_paper_512_anchors(self):
        """≈ 70 s without MRNet, ≈ 20 s with 8-way (3.4× faster)."""
        flat = simulate_startup(512).total
        tree = simulate_startup(512, balanced_tree_for(8, 512)).total
        assert 55 < flat < 85
        assert 15 < tree < 28
        assert 2.8 < flat / tree < 4.0

    def test_benefit_grows_with_daemons(self):
        """'the benefit of using MRNet increased as we increased the
        number of tool daemons.'"""
        ratios = []
        for d in (16, 64, 256, 512):
            flat = simulate_startup(d).total
            tree = simulate_startup(d, balanced_tree_for(8, d)).total
            ratios.append(flat / tree)
        assert ratios == sorted(ratios)

    def test_flat_superlinear(self):
        t256 = simulate_startup(256).total
        t512 = simulate_startup(512).total
        assert t512 / t256 > 2.0  # grows faster than linearly

    def test_mrnet_near_linear(self):
        t256 = simulate_startup(256, balanced_tree_for(8, 256)).total
        t512 = simulate_startup(512, balanced_tree_for(8, 512)).total
        assert t512 / t256 < 2.0

    def test_non_mrnet_activities_identical(self):
        """'Parse Executable', 'Report Code Resources', 'Report
        Callgraph' see no benefit (Figure 8b)."""
        flat = simulate_startup(512)
        tree = simulate_startup(512, balanced_tree_for(8, 512))
        for name in ("Parse Executable", "Report Code Resources", "Report Callgraph"):
            assert flat.per_activity[name] == pytest.approx(tree.per_activity[name])

    def test_clock_skew_benefits_most(self):
        """'Clock skew detection was the Paradyn start-up activity that
        benefitted most from using MRNet.'"""
        flat = simulate_startup(512)
        tree = simulate_startup(512, balanced_tree_for(8, 512))
        improvements = {
            a.name: flat.per_activity[a.name] / max(tree.per_activity[a.name], 1e-9)
            for a in ACTIVITIES
            if a.uses_mrnet
        }
        best = max(improvements, key=improvements.get)
        assert best == "Find Clock Skew"

    def test_activity_list_matches_paper(self):
        names = [a.name for a in ACTIVITIES]
        assert names[0] == "Report Self"
        assert names[-1] == "Report Done"
        assert "Find Clock Skew" in names and "Parse Executable" in names
        assert len(names) == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_startup(0)
        with pytest.raises(ValueError):
            simulate_startup(8, balanced_tree_for(2, 16))

    def test_fanout_ordering_mild(self):
        """Fan-out matters little with MRNet (curves bunch in Fig 8a)."""
        t4 = simulate_startup(256, balanced_tree_for(4, 256)).total
        t16 = simulate_startup(256, balanced_tree_for(16, 256)).total
        assert abs(t4 - t16) / t4 < 0.25
