"""Tests for Paradyn-style folding time histograms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paradyn.perfdata import DataSample
from repro.paradyn.timehist import TimeHistogram


class TestBasics:
    def test_single_bin_attribution(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0)
        h.add(5.0, 0.0, 1.0)
        assert h.values == [5.0, 0.0, 0.0, 0.0]

    def test_proportional_split_across_bins(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0)
        h.add(4.0, 0.5, 2.5)  # spans halves of bins 0 and 2, all of 1
        assert h.values == pytest.approx([1.0, 2.0, 1.0, 0.0])

    def test_total_conserved(self):
        h = TimeHistogram(n_bins=8, initial_bin_width=0.5)
        h.add(3.0, 0.1, 1.3)
        h.add(2.0, 2.0, 3.9)
        assert h.total == pytest.approx(5.0)

    def test_pre_start_portion_dropped(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0, start_time=1.0)
        h.add(4.0, 0.0, 2.0)  # half before start
        assert h.total == pytest.approx(2.0)
        h2 = TimeHistogram(n_bins=4, initial_bin_width=1.0, start_time=10.0)
        h2.add(4.0, 0.0, 2.0)  # entirely before start
        assert h2.total == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeHistogram(n_bins=3)
        with pytest.raises(ValueError):
            TimeHistogram(n_bins=0)
        with pytest.raises(ValueError):
            TimeHistogram(initial_bin_width=0.0)

    def test_geometry(self):
        h = TimeHistogram(n_bins=10, initial_bin_width=2.0, start_time=5.0)
        assert h.horizon == 25.0
        assert h.bin_edges(0) == (5.0, 7.0)
        assert h.bin_edges(9) == (23.0, 25.0)


class TestFolding:
    def test_fold_merges_pairs(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0)
        for i in range(4):
            h.add(float(i + 1), i, i + 1)
        h.fold()
        assert h.values == pytest.approx([3.0, 7.0, 0.0, 0.0])
        assert h.bin_width == 2.0
        assert h.folds == 1

    def test_automatic_fold_on_overflow(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0)
        h.add(1.0, 0.0, 1.0)
        assert h.folds == 0
        h.add(1.0, 6.0, 7.0)  # beyond horizon 4 → folds to width 2
        assert h.folds == 1
        assert h.horizon == 8.0
        assert h.total == pytest.approx(2.0)

    def test_multiple_folds(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0)
        h.add(1.0, 100.0, 101.0)
        assert h.horizon >= 101.0
        assert h.folds >= 5
        assert h.total == pytest.approx(1.0)

    def test_value_over_after_fold(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0)
        h.add(4.0, 0.0, 4.0)  # 1.0 per second
        h.add(1.0, 7.0, 8.0)  # forces a fold to width 2
        assert h.value_over(0.0, 4.0) == pytest.approx(4.0)
        assert h.value_over(0.0, h.horizon) == pytest.approx(5.0)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 200.0, allow_nan=False),
                st.floats(0.01, 20.0, allow_nan=False),
                st.floats(0.0, 50.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_total_conserved_across_folds(self, triples):
        """Folding never loses or invents value (Paradyn's guarantee)."""
        h = TimeHistogram(n_bins=16, initial_bin_width=0.5)
        fed = 0.0
        for start, dur, value in triples:
            h.add(value, start, start + dur)
            fed += value
        assert h.total == pytest.approx(fed, rel=1e-9, abs=1e-9)


class TestQueriesAndSeries:
    def test_value_over_partial_bins(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0)
        h.add(2.0, 0.0, 2.0)
        assert h.value_over(0.5, 1.5) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            h.value_over(1.0, 1.0)

    def test_rate_series(self):
        h = TimeHistogram(n_bins=2, initial_bin_width=2.0)
        h.add(4.0, 0.0, 2.0)
        series = h.rate_series()
        assert series[0] == (1.0, 2.0)  # midpoint 1.0, rate 2/s
        assert series[1] == (3.0, 0.0)

    def test_from_datasample(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0)
        h.add_sample(DataSample(3.0, 0.0, 3.0))
        assert h.total == pytest.approx(3.0)
        assert h.samples_added == 1

    def test_repr(self):
        assert "folds=0" in repr(TimeHistogram(n_bins=4))


class TestFloatEdgeRegression:
    def test_samples_on_exact_bin_edges_terminate(self):
        """Regression: intervals hitting k·width edges exactly used to
        stall the edge-walking attribution loop."""
        h = TimeHistogram(n_bins=240, initial_bin_width=0.2)
        # The §3.2 integration workload that exposed the hang.
        for k in range(4):
            h.add(0.5, k * 0.5, (k + 1) * 0.5)
        assert h.total == pytest.approx(2.0)

    def test_many_adversarial_edges(self):
        h = TimeHistogram(n_bins=16, initial_bin_width=0.1)
        fed = 0.0
        for k in range(50):
            start = k * 0.1
            h.add(1.0, start, start + 0.1)
            fed += 1.0
        assert h.total == pytest.approx(fed)

    def test_tiny_sample_within_bin(self):
        h = TimeHistogram(n_bins=4, initial_bin_width=1.0)
        h.add(1.0, 0.5, 0.5 + 1e-9)
        assert h.total == pytest.approx(1.0)
