"""End-to-end tests of the threaded MRNet runtime.

These exercise the full stack: Network → comm-node threads → channels
→ back-ends, through the packet codec on every hop.
"""

import textwrap
import time

import pytest

from repro.core import Network, NetworkError, StreamClosed
from repro.filters import (
    SFILTER_DONTWAIT,
    SFILTER_TIMEOUT,
    TFILTER_AVG,
    TFILTER_CONCAT,
    TFILTER_MAX,
    TFILTER_MIN,
    TFILTER_NULL,
    TFILTER_SUM,
    TFILTER_WAVG,
)
from repro.topology import balanced_tree, balanced_tree_for, flat_topology, unbalanced_fig4

RECV_TIMEOUT = 10.0


def drive_backends(net, reply=None, expect_tag=None):
    """Have every back-end receive one packet and optionally reply.

    ``reply(rank, packet) -> (fmt, values)`` builds the response.
    """
    for rank in sorted(net.backends):
        be = net.backends[rank]
        got = be.recv(timeout=RECV_TIMEOUT)
        assert got is not None, f"rank {rank} saw shutdown"
        packet, stream = got
        if expect_tag is not None:
            assert packet.tag == expect_tag
        if reply is not None:
            fmt, values = reply(rank, packet)
            stream.send(fmt, *values)


@pytest.fixture(params=["flat", "tree4", "deep2", "unbalanced"])
def net(request):
    topo = {
        "flat": lambda: flat_topology(8),
        "tree4": lambda: balanced_tree(4, 2),
        "deep2": lambda: balanced_tree(2, 3),
        "unbalanced": lambda: unbalanced_fig4(),
    }[request.param]()
    network = Network(topo)
    yield network
    network.shutdown()


class TestBroadcastReduce:
    def test_fmax_example(self, net):
        """Figure 2's float-maximum tool, verbatim flow."""
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_MAX)
        stream.send("%d", 17)
        drive_backends(net, reply=lambda r, p: ("%lf", (float(r) * 1.5,)))
        result = stream.recv(timeout=RECV_TIMEOUT)
        n = len(net.backends)
        assert result.values == ((n - 1) * 1.5,)

    def test_sum(self, net):
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_SUM)
        stream.send("%d", 0)
        drive_backends(net, reply=lambda r, p: ("%d", (r,)))
        n = len(net.backends)
        assert stream.recv_values(timeout=RECV_TIMEOUT) == (n * (n - 1) // 2,)

    def test_min(self, net):
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_MIN)
        stream.send("%d", 0)
        drive_backends(net, reply=lambda r, p: ("%d", (100 - r,)))
        n = len(net.backends)
        assert stream.recv_values(timeout=RECV_TIMEOUT) == (100 - (n - 1),)

    def test_concat_rank_order(self, net):
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_CONCAT)
        stream.send("%d", 0)
        drive_backends(net, reply=lambda r, p: ("%ud", (r,)))
        (ranks,) = stream.recv_values(timeout=RECV_TIMEOUT)
        assert ranks == tuple(range(len(net.backends)))

    def test_weighted_average_exact(self, net):
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_WAVG)
        stream.send("%d", 0)
        drive_backends(net, reply=lambda r, p: ("%lf %ud", (float(r), 1)))
        mean, count = stream.recv_values(timeout=RECV_TIMEOUT)
        n = len(net.backends)
        assert count == n
        assert mean == pytest.approx((n - 1) / 2)

    def test_broadcast_payload_reaches_all(self, net):
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_NULL, sync=SFILTER_DONTWAIT)
        stream.send("%d %s %alf", 7, "config", (1.0, 2.0), tag=321)
        seen = []
        for rank in sorted(net.backends):
            packet, _ = net.backends[rank].recv(timeout=RECV_TIMEOUT)
            assert packet.tag == 321
            assert packet.values == (7, "config", (1.0, 2.0))
            seen.append(rank)
        assert seen == sorted(net.backends)


class TestMultipleStreams:
    def test_concurrent_streams_demultiplexed(self, net):
        """Two simultaneous reductions on the same components (§2.1)."""
        comm = net.get_broadcast_communicator()
        s_sum = net.new_stream(comm, transform=TFILTER_SUM)
        s_max = net.new_stream(comm, transform=TFILTER_MAX)
        s_sum.send("%d", 0, tag=201)
        s_max.send("%d", 0, tag=202)
        for rank in sorted(net.backends):
            be = net.backends[rank]
            for _ in range(2):
                packet, stream = be.recv(timeout=RECV_TIMEOUT)
                if packet.tag == 201:
                    stream.send("%d", rank)
                else:
                    stream.send("%d", 1000 + rank)
        n = len(net.backends)
        assert s_sum.recv_values(timeout=RECV_TIMEOUT) == (n * (n - 1) // 2,)
        assert s_max.recv_values(timeout=RECV_TIMEOUT) == (1000 + n - 1,)

    def test_interleaved_waves_on_one_stream(self, net):
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_SUM)
        rounds = 3
        for _ in range(rounds):
            stream.send("%d", 0)
        for rank in sorted(net.backends):
            be = net.backends[rank]
            for i in range(rounds):
                _, bstream = be.recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", i)
        results = [stream.recv_values(timeout=RECV_TIMEOUT) for _ in range(rounds)]
        n = len(net.backends)
        assert results == [(0,), (n,), (2 * n,)]

    def test_stream_anonymous_frontend_recv(self, net):
        comm = net.get_broadcast_communicator()
        s1 = net.new_stream(comm, transform=TFILTER_SUM)
        s1.send("%d", 0)
        drive_backends(net, reply=lambda r, p: ("%d", (1,)))
        packet, stream = net.recv(timeout=RECV_TIMEOUT)
        assert stream.stream_id == s1.stream_id
        assert packet.values == (len(net.backends),)


class TestSubsetCommunicators:
    def test_multicast_to_subset(self):
        net = Network(balanced_tree(4, 2))
        try:
            all_comm = net.get_broadcast_communicator()
            subset = all_comm.subset([1, 5, 9])
            stream = net.new_stream(subset, transform=TFILTER_SUM)
            stream.send("%d", 0)
            # Only the subset receives.
            for rank in (1, 5, 9):
                packet, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", rank)
            for rank in (0, 2, 3, 15):
                assert net.backends[rank].poll() is None
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (15,)
        finally:
            net.shutdown()

    def test_single_endpoint_point_to_point(self):
        net = Network(balanced_tree(2, 3))
        try:
            comm = net.new_communicator([5])
            stream = net.new_stream(comm, transform=TFILTER_NULL,
                                    sync=SFILTER_DONTWAIT)
            stream.send("%s", "just you", tag=400)
            packet, bstream = net.backends[5].recv(timeout=RECV_TIMEOUT)
            assert packet.values == ("just you",)
            bstream.send("%s", "ack")
            assert stream.recv_values(timeout=RECV_TIMEOUT) == ("ack",)
        finally:
            net.shutdown()

    def test_unknown_rank_rejected(self):
        net = Network(flat_topology(4))
        try:
            with pytest.raises(ValueError):
                net.new_communicator([99])
            comm = net.get_broadcast_communicator()
            with pytest.raises(ValueError):
                comm.subset([99])
        finally:
            net.shutdown()


class TestTimeoutSync:
    def test_partial_wave_released(self):
        net = Network(balanced_tree(2, 2))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(
                comm, transform=TFILTER_SUM, sync=SFILTER_TIMEOUT, sync_timeout=0.05
            )
            stream.send("%d", 0)
            # Only half the back-ends answer.
            for rank in (0, 1):
                packet, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", 10 + rank)
            # Drain the rest so their packets are not pending.
            for rank in (2, 3):
                net.backends[rank].recv(timeout=RECV_TIMEOUT)
            total = 0
            deadline_packets = []
            while total < 21:
                p = stream.recv(timeout=RECV_TIMEOUT)
                deadline_packets.append(p)
                total += p.values[0]
            assert total == 21
        finally:
            net.shutdown()


class TestCustomFilters:
    def test_network_wide_loaded_filter(self, tmp_path):
        mod = tmp_path / "squares.py"
        mod.write_text(
            textwrap.dedent(
                """
                def sum_of_squares(packets, state):
                    total = sum(p.values[0] ** 2 for p in packets)
                    return [packets[0].replace(values=(total,))]
                """
            )
        )
        net = Network(balanced_tree(2, 2))
        try:
            fid = net.load_filter_func(str(mod), "sum_of_squares")
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=fid)
            stream.send("%d", 0)
            drive_backends(net, reply=lambda r, p: ("%d", (r + 1,)))
            # (1²+2²)² + (3²+4²)² summed at root... the filter squares at
            # every level, so compute the two-level expectation explicitly.
            level1 = [(1**2 + 2**2), (3**2 + 4**2)]
            expected = sum(v**2 for v in level1)
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (expected,)
        finally:
            net.shutdown()

    def test_downstream_transform(self, tmp_path):
        mod = tmp_path / "downf.py"
        mod.write_text(
            textwrap.dedent(
                """
                def increment(packets, state):
                    return [p.replace(values=(p.values[0] + 1,)) for p in packets]
                """
            )
        )
        net = Network(balanced_tree(2, 2))
        try:
            fid = net.load_filter_func(str(mod), "increment")
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(
                comm, transform=TFILTER_NULL, sync=SFILTER_DONTWAIT,
                down_transform=fid,
            )
            stream.send("%d", 0)
            # Depth 2: incremented once per internal level (front-end does
            # not apply downstream filters to its own sends; internal
            # processes do).
            for rank in sorted(net.backends):
                packet, _ = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                assert packet.values == (2,)
        finally:
            net.shutdown()


class TestLifecycle:
    def test_mode2_attach_backends(self):
        net = Network(balanced_tree(2, 2), auto_backends=False)
        try:
            assert not net.ready
            backends = [net.attach_backend(rank) for rank in range(4)]
            net.wait_for_ready(timeout=10)
            assert net.ready
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            stream.send("%d", 0)
            for be in backends:
                _, bstream = be.recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", 2)
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (8,)
        finally:
            net.shutdown()

    def test_mode2_double_attach_rejected(self):
        net = Network(flat_topology(2), auto_backends=False)
        try:
            net.attach_backend(0)
            with pytest.raises(NetworkError):
                net.attach_backend(0)
            with pytest.raises(NetworkError):
                net.attach_backend(99)
        finally:
            net.shutdown()

    def test_broadcast_before_ready_rejected(self):
        net = Network(flat_topology(2), auto_backends=False)
        try:
            with pytest.raises(NetworkError):
                net.get_broadcast_communicator()
        finally:
            net.shutdown()

    def test_stream_close_propagates(self):
        net = Network(balanced_tree(2, 2))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            stream.close()
            with pytest.raises(StreamClosed):
                stream.send("%d", 1)
            # Back-ends eventually observe the closure.  The comm-node
            # threads forward the close asynchronously, so poll with a
            # bounded wait instead of racing their schedulers.
            deadline = time.monotonic() + RECV_TIMEOUT
            for rank in sorted(net.backends):
                be = net.backends[rank]
                be.poll()
                while stream.stream_id in be.stream_ids:
                    assert time.monotonic() < deadline, (
                        f"rank {rank} never saw stream closure"
                    )
                    time.sleep(0.001)
                    be.poll()
        finally:
            net.shutdown()

    def test_shutdown_reaches_backends(self):
        net = Network(balanced_tree(2, 2))
        net.shutdown()
        for be in net.backends.values():
            assert be.recv(timeout=RECV_TIMEOUT) is None
            assert be.shut_down

    def test_context_manager(self):
        with Network(flat_topology(2)) as net:
            assert net.ready
        assert net.is_down

    def test_api_after_shutdown_raises(self):
        net = Network(flat_topology(2))
        net.shutdown()
        with pytest.raises(NetworkError):
            net.get_broadcast_communicator()

    def test_shutdown_idempotent(self):
        net = Network(flat_topology(2))
        net.shutdown()
        net.shutdown()

    def test_invalid_filter_ids_rejected(self):
        with Network(flat_topology(2)) as net:
            comm = net.get_broadcast_communicator()
            with pytest.raises(NetworkError):
                net.new_stream(comm, transform=424242)
            with pytest.raises(NetworkError):
                net.new_stream(comm, sync=424242)
            with pytest.raises(NetworkError):
                net.new_stream(comm, down_transform=424242)

    def test_config_text_topology(self):
        text = "fe:0 => be0:0 be1:0 ;"
        with Network(text) as net:
            assert len(net.backends) == 2

    def test_config_file_topology(self, tmp_path):
        from repro.topology import serialize_config, write_config_file

        path = tmp_path / "topo.cfg"
        write_config_file(balanced_tree(2, 2), path, header="test")
        with Network(str(path)) as net:
            assert len(net.backends) == 4


class TestScaleModest:
    def test_64_backends_8way(self):
        net = Network(balanced_tree_for(8, 64))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            stream.send("%d", 0)
            drive_backends(net, reply=lambda r, p: ("%d", (1,)))
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (64,)
        finally:
            net.shutdown()

    def test_avg_balanced_tree_exact(self):
        # Balanced fan-in ⇒ plain avg is exact.
        net = Network(balanced_tree(4, 2))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_AVG)
            stream.send("%d", 0)
            drive_backends(net, reply=lambda r, p: ("%lf", (10.0,)))
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (10.0,)
        finally:
            net.shutdown()
