"""Network-layer edge cases: multiple instances, diagnostics, misuse."""

import pytest

from repro.core import Network, NetworkError, StreamClosed
from repro.filters import SFILTER_DONTWAIT, TFILTER_NULL, TFILTER_SUM
from repro.topology import balanced_tree, flat_topology

RECV_TIMEOUT = 10.0


class TestMultipleNetworks:
    def test_two_instances_are_isolated(self):
        """'each tool has its own MRNet network instantiation' (§2.1)."""
        net_a = Network(flat_topology(2))
        net_b = Network(flat_topology(3))
        try:
            comm_a = net_a.get_broadcast_communicator()
            comm_b = net_b.get_broadcast_communicator()
            assert len(comm_a) == 2 and len(comm_b) == 3
            # Communicators are bound to their network.
            with pytest.raises(NetworkError):
                net_a.new_stream(comm_b, transform=TFILTER_SUM)
            # Traffic in A is invisible in B.
            sa = net_a.new_stream(comm_a, transform=TFILTER_SUM)
            sa.send("%d", 1)
            for rank in net_a.backends:
                _, bs = net_a.backends[rank].recv(timeout=RECV_TIMEOUT)
                bs.send("%d", 1)
            assert sa.recv_values(timeout=RECV_TIMEOUT) == (2,)
            for be in net_b.backends.values():
                assert be.poll() is None
        finally:
            net_a.shutdown()
            net_b.shutdown()

    def test_stream_ids_independent_per_network(self):
        with Network(flat_topology(2)) as a, Network(flat_topology(2)) as b:
            sa = a.new_stream(a.get_broadcast_communicator())
            sb = b.new_stream(b.get_broadcast_communicator())
            assert sa.stream_id == sb.stream_id  # both start at 1


class TestDiagnostics:
    def test_unexpected_packets_drained(self):
        with Network(flat_topology(2)) as net:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, sync=SFILTER_DONTWAIT)
            stream.send("%d", 0, tag=500)
            # Back-end replies on a stream id the front-end never made.
            _, bstream = net.backends[0].recv(timeout=RECV_TIMEOUT)
            from repro.core.packet import Packet

            rogue = Packet(777, 123, "%s", ("lost",), origin_rank=0)
            net.backends[0]._send_upstream(rogue)
            import time

            deadline = time.monotonic() + RECV_TIMEOUT
            found = []
            while not found and time.monotonic() < deadline:
                net.flush()
                found = net.unexpected_packets()
            assert found and found[0].stream_id == 777

    def test_repr_states(self):
        net = Network(flat_topology(2))
        assert "ready" in repr(net)
        net.shutdown()
        assert "down" in repr(net)

    def test_num_internal_nodes(self):
        with Network(balanced_tree(2, 2)) as net:
            assert net.num_internal_nodes == 2
        with Network(flat_topology(4)) as net:
            assert net.num_internal_nodes == 0


class TestMisuse:
    def test_recv_on_closed_stream_still_drains(self):
        """Closing a stream flushes partials; the queue stays readable."""
        with Network(flat_topology(2)) as net:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            stream.send("%d", 0)
            for rank in net.backends:
                _, bs = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bs.send("%d", 5)
            result = stream.recv(timeout=RECV_TIMEOUT)
            assert result.values == (10,)
            stream.close()
            with pytest.raises(StreamClosed):
                stream.send("%d", 1)
            assert stream.try_recv() is None

    def test_send_packet_stream_mismatch(self):
        from repro.core.packet import Packet

        with Network(flat_topology(2)) as net:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_NULL)
            with pytest.raises(ValueError):
                stream.send_packet(Packet(999, 0, "%d", (1,)))

    def test_backend_send_before_connect(self):
        from repro.core import NetworkShutdown

        net = Network(flat_topology(2), auto_backends=False)
        try:
            slot = net._slots[0]
            from repro.core.backend import BackEnd

            be = BackEnd(0, slot.label, slot.parent_end, slot.inbox)
            from repro.core.packet import Packet

            with pytest.raises(NetworkShutdown):
                be._send_upstream(Packet(1, 0, "%d", (1,)))
        finally:
            net.shutdown()

    def test_context_exit_after_manual_shutdown(self):
        with Network(flat_topology(2)) as net:
            net.shutdown()
        assert net.is_down
