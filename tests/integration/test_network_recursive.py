"""Integration tests: parallel recursive instantiation (paper §2.5,
Figure 5) and the shared-memory transport on co-located links.

``Network(transport="process")`` defaults to ``instantiation=
"recursive"``: the front-end launches only the root's direct internal
children, each of which builds its own subtree concurrently, and
internal listener addresses travel up the data plane as
``TAG_ADDR_REPORT`` packets.  Trees whose topology expresses
co-location (a shared host list) upgrade intra-host links to
shared-memory rings.
"""

import textwrap
import threading
import time

import pytest

from repro.core import Network, NetworkError
from repro.filters import TFILTER_CONCAT, TFILTER_SUM
from repro.topology import balanced_tree, flat_topology, link_transports

RECV_TIMEOUT = 30.0


def run_reduction(net, expected_sum):
    comm = net.get_broadcast_communicator()
    stream = net.new_stream(comm, transform=TFILTER_SUM)
    stream.send("%d", 0)
    for rank in sorted(net.backends):
        _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
        bstream.send("%d", rank + 1)
    assert stream.recv_values(timeout=RECV_TIMEOUT) == (expected_sum,)


class TestRecursiveInstantiation:
    def test_depth_three_tree_forks_grandchildren(self):
        # 2-ary depth-3: 6 internal nodes but only 2 direct Popen
        # children — the other 4 are forked by the subtree owners.
        net = Network(balanced_tree(2, 3), transport="process")
        try:
            assert net.instantiation == "recursive"
            assert len(net._procs) == 2
            assert len(net._core.addr_reports) == 6
            run_reduction(net, 36)  # 1+2+...+8
        finally:
            net.shutdown()
        assert all(p.poll() is not None for p in net._procs)

    def test_obs_ranks_match_sequential_numbering(self):
        # Identities are stable across instantiation modes: breadth-
        # first rank order, same as the sequential spawn loop.
        net = Network(balanced_tree(2, 2), transport="process")
        try:
            stats = net.stats()
            keys = {k for k in stats if ":" in k and not k.startswith("0:")}
            assert keys == {"1:node0001:0", "2:node0002:0"}
        finally:
            net.shutdown()

    def test_sequential_mode_still_available(self):
        net = Network(
            balanced_tree(2, 2),
            transport="process",
            instantiation="sequential",
        )
        try:
            assert len(net._procs) == 2
            run_reduction(net, 10)
        finally:
            net.shutdown()

    def test_popen_spawn_round_trips_flags(self, tmp_path):
        """Heartbeat and filter flags must survive the recursive spawn
        command line: with ``--spawn popen`` every grandchild is a
        fresh interpreter that knows only its argv."""
        mod = tmp_path / "doubler.py"
        mod.write_text(
            textwrap.dedent(
                """
                def double_sum(packets, state):
                    total = sum(p.values[0] for p in packets) * 2
                    return [packets[0].replace(values=(total,))]
                """
            )
        )
        net = Network(
            balanced_tree(2, 3),
            transport="process",
            spawn="popen",
            filter_specs=[(str(mod), "double_sum")],
            heartbeat_interval=0.2,
        )
        try:
            (fid,) = net.filter_ids
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=fid)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", rank + 1)
            # Depth-3 doubling cascade: leaves pair-sum doubled at
            # each of the three internal/front-end filter levels...
            # level1: 2*(a+b); level2: 2*(l+r); fe applies the filter
            # too.  1..8 pairwise: (1+2),(3+4),(5+6),(7+8) -> *2 =
            # 6,14,22,30; level2: (6+14)*2=40, (22+30)*2=104; fe:
            # (40+104)*2 = 288.
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (288,)
        finally:
            net.shutdown()

    def test_concurrent_attach_backend_threads(self):
        """Mode 2 from many threads at once: a process-management
        system attaching all its tool daemons concurrently."""
        net = Network(
            balanced_tree(2, 2),
            transport="process",
            auto_backends=False,
        )
        try:
            errors = []

            def attach(rank):
                try:
                    net.attach_backend(rank)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=attach, args=(rank,))
                for rank in sorted(net._slots)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=RECV_TIMEOUT)
            assert not errors
            assert sorted(net.backends) == [0, 1, 2, 3]
            net.wait_for_ready(RECV_TIMEOUT)
            run_reduction(net, 10)
        finally:
            net.shutdown()

    def test_double_attach_raises_even_concurrently(self):
        net = Network(
            flat_topology(2), transport="process", auto_backends=False
        )
        try:
            net.attach_backend(0)
            with pytest.raises(NetworkError):
                net.attach_backend(0)
            net.attach_backend(1)
            net.wait_for_ready(RECV_TIMEOUT)
        finally:
            net.shutdown()

    def test_invalid_mode_arguments_raise(self):
        topo = balanced_tree(2, 2)
        with pytest.raises(NetworkError):
            Network(topo, transport="process", instantiation="magic")
        with pytest.raises(NetworkError):
            Network(topo, transport="process", shm="always")
        with pytest.raises(NetworkError):
            Network(topo, transport="process", spawn="rsh")


class TestShmNetwork:
    def test_co_located_tree_runs_on_shm(self):
        from repro.transport.shm import live_segments

        # One host for everything: every link in the plan is shm.
        topo = balanced_tree(2, 2, hosts=["h0"])
        plan = link_transports(topo)
        assert set(plan.values()) == {"shm"}
        net = Network(topo, transport="process")
        try:
            run_reduction(net, 10)
            stats = net.stats()
            fe = stats["0:front-end"]
            assert fe['links{kind="shm"}'] == 2
            assert fe['links{kind="tcp"}'] == 0
            for key in ("1:h0:1", "2:h0:2"):
                assert stats[key]['links{kind="shm"}'] == 3
        finally:
            net.shutdown()
        deadline = time.monotonic() + 5
        while live_segments() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert live_segments() == []

    def test_distinct_hosts_stay_on_tcp(self):
        # Default generators give every process its own host: the shm
        # auto mode must not upgrade anything.
        topo = balanced_tree(2, 2)
        assert set(link_transports(topo).values()) == {"tcp"}
        net = Network(topo, transport="process")
        try:
            stats = net.stats()
            fe = stats["0:front-end"]
            assert fe['links{kind="shm"}'] == 0
            assert fe['links{kind="tcp"}'] == 2
        finally:
            net.shutdown()

    def test_shm_off_keeps_co_located_links_on_tcp(self):
        topo = balanced_tree(2, 2, hosts=["h0"])
        assert set(link_transports(topo, shm="off").values()) == {"tcp"}
        net = Network(topo, transport="process", shm="off")
        try:
            stats = net.stats()
            assert stats["0:front-end"]['links{kind="shm"}'] == 0
            run_reduction(net, 10)
        finally:
            net.shutdown()

    def test_segment_failure_falls_back_to_tcp(self, monkeypatch):
        """If rings cannot be created the link silently stays TCP —
        degradation, never an error (the negotiation contract)."""
        from repro.transport import shm as shm_mod

        def broken_create(cls, capacity=shm_mod.DEFAULT_CAPACITY):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(
            shm_mod.ShmRing, "create", classmethod(broken_create)
        )
        # Flat co-located topology: the back-ends (this process) are
        # the connectors whose offers now fail.
        net = Network(flat_topology(3, hosts=["h0"]), transport="process")
        try:
            assert all(slot.shm for slot in net._slots.values())
            stats = net.stats()
            fe = stats["0:front-end"]
            assert fe['links{kind="shm"}'] == 0
            assert fe['links{kind="tcp"}'] == 3
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_CONCAT)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%ud", rank)
            assert stream.recv_values(timeout=RECV_TIMEOUT) == ((0, 1, 2),)
        finally:
            net.shutdown()

    def test_local_transport_plan_is_channel(self):
        plan = link_transports(balanced_tree(2, 2), transport="local")
        assert set(plan.values()) == {"channel"}
