"""End-to-end tests for pipelined (chunked) collectives.

Covers the PR's acceptance bars directly:

* chunked and unchunked streams produce **identical** results for every
  built-in numeric filter (min/max/sum/avg/concat/scan);
* ``chunk_bytes=None`` reproduces the legacy whole-packet behaviour
  (single packet, original tag, no chunk machinery engaged);
* reduce-to-all and dual-root streams deliver the reduced wave both to
  the front-end (``Stream.allreduce``) and to every back-end;
* the windowed-aggregation filter smooths across waves.
"""

import numpy as np
import pytest

from repro.core import Network, NetworkError, StreamClosed
from repro.core.protocol import (
    TAG_CHUNK,
    WAVE_DUAL_ROOT,
    WAVE_REDUCE,
    WAVE_REDUCE_TO_ALL,
)
from repro.filters import (
    TFILTER_AVG,
    TFILTER_CONCAT,
    TFILTER_MAX,
    TFILTER_MIN,
    TFILTER_SCAN,
    TFILTER_SUM,
    TFILTER_WINDOW,
)
from repro.topology import balanced_tree, flat_topology

RECV_TIMEOUT = 10.0
N_ELEMS = 4096  # 32 KiB of float64 per rank — far above chunk_bytes below
CHUNK_BYTES = 4096


@pytest.fixture
def net():
    network = Network(balanced_tree(2, 3))  # 8 back-ends, depth 3
    yield network
    network.shutdown()


def rank_array(rank, n=N_ELEMS):
    """A deterministic per-rank float array (varied enough for min/max)."""
    base = np.arange(n, dtype=np.float64)
    return tuple(((base * (rank + 1)) % 257 - 128.0).tolist())


def run_wave(net, stream, fmt="%alf", payload=rank_array):
    """Kick one wave and have every back-end contribute *payload(rank)*."""
    stream.send("%d", 0)
    for rank in sorted(net.backends):
        packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
        s.send(fmt, payload(rank))
    return stream.recv(timeout=RECV_TIMEOUT)


class TestChunkedEquivalence:
    """Chunked == unchunked for every built-in filter (acceptance bar)."""

    @pytest.mark.parametrize(
        "tfilter",
        [TFILTER_MIN, TFILTER_MAX, TFILTER_SUM, TFILTER_AVG, TFILTER_CONCAT],
        ids=["min", "max", "sum", "avg", "concat"],
    )
    def test_numeric_filters_identical(self, net, tfilter):
        comm = net.get_broadcast_communicator()
        whole = net.new_stream(comm, transform=tfilter)
        chunked = net.new_stream(comm, transform=tfilter, chunk_bytes=CHUNK_BYTES)

        p_whole = run_wave(net, whole)
        p_chunked = run_wave(net, chunked)

        # Headers differ (stream ids), but the aggregate must match
        # field-for-field, bit-for-bit.
        assert p_chunked.fmt.canonical == p_whole.fmt.canonical
        assert p_chunked.values == p_whole.values
        assert p_chunked.tag == p_whole.tag

    def test_scan_identical_and_correct(self, net):
        comm = net.get_broadcast_communicator()
        whole = net.new_stream(comm, transform=TFILTER_SCAN)
        chunked = net.new_stream(comm, transform=TFILTER_SCAN, chunk_bytes=CHUNK_BYTES)

        n = 512
        payload = lambda rank: rank_array(rank, n)

        whole.send("%d", 0)
        for rank in sorted(net.backends):
            packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
            s.send("%alf", payload(rank))
        v_whole = whole.scan(timeout=RECV_TIMEOUT)

        chunked.send("%d", 0)
        for rank in sorted(net.backends):
            packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
            s.send("%alf", payload(rank))
        v_chunked = chunked.scan(timeout=RECV_TIMEOUT)

        assert v_chunked == v_whole
        # And both equal the reference prefix sum over rank-ordered input.
        flat = np.concatenate([np.asarray(payload(r)) for r in sorted(net.backends)])
        ref = np.cumsum(flat)
        assert np.allclose(np.asarray(v_whole), ref)

    def test_multiple_chunked_waves_stay_ordered(self, net):
        """Back-to-back chunked waves don't bleed into each other."""
        comm = net.get_broadcast_communicator()
        st = net.new_stream(comm, transform=TFILTER_SUM, chunk_bytes=CHUNK_BYTES)
        for round_no in range(3):
            payload = lambda rank: rank_array(rank + round_no * 10)
            result = run_wave(net, st, payload=payload)
            expect = np.sum(
                [np.asarray(payload(r)) for r in sorted(net.backends)], axis=0
            )
            assert np.allclose(np.asarray(result.values[0]), expect)


class TestChunkBytesNone:
    """chunk_bytes=None must reproduce today's behaviour exactly."""

    def test_backends_see_one_whole_packet(self, net):
        comm = net.get_broadcast_communicator()
        st = net.new_stream(comm, transform=TFILTER_SUM)
        assert st.chunk_bytes is None

        big = tuple(float(i) for i in range(N_ELEMS))
        st.send("%alf", big, tag=777)
        for rank in sorted(net.backends):
            packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
            # One packet, original tag — never TAG_CHUNK fragments.
            assert packet.tag == 777
            assert packet.tag != TAG_CHUNK
            assert packet.values == (big,)
            s.send("%d", rank)
        st.recv(timeout=RECV_TIMEOUT)

    def test_manager_runs_unchunked(self, net):
        comm = net.get_broadcast_communicator()
        st = net.new_stream(comm, transform=TFILTER_SUM)
        manager = net._core.streams[st.stream_id]
        assert manager.chunk_bytes == 0
        assert not manager.incremental
        assert manager._count_chunks_in_flight() == 0

    def test_invalid_chunk_bytes_rejected(self, net):
        comm = net.get_broadcast_communicator()
        with pytest.raises(NetworkError):
            net.new_stream(comm, transform=TFILTER_SUM, chunk_bytes=0)
        with pytest.raises(NetworkError):
            net.new_stream(comm, transform=TFILTER_SUM, chunk_bytes=-1)
        with pytest.raises(NetworkError):
            net.new_stream(comm, transform=TFILTER_SUM, pattern=99)


class TestReduceToAll:
    @pytest.mark.parametrize(
        "pattern", [WAVE_REDUCE_TO_ALL, WAVE_DUAL_ROOT], ids=["single-root", "dual-root"]
    )
    def test_allreduce_reaches_frontend_and_backends(self, net, pattern):
        comm = net.get_broadcast_communicator()
        st = net.new_stream(
            comm, transform=TFILTER_SUM, chunk_bytes=CHUNK_BYTES, pattern=pattern
        )
        st.send("%d", 0)
        for rank in sorted(net.backends):
            packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
            s.send("%alf", rank_array(rank))

        expect = np.sum(
            [np.asarray(rank_array(r)) for r in sorted(net.backends)], axis=0
        )
        (fe_values,) = st.allreduce(timeout=RECV_TIMEOUT)
        assert np.allclose(np.asarray(fe_values), expect)

        # Every back-end receives the identical broadcast copy.
        for rank in sorted(net.backends):
            packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
            assert s.stream_id == st.stream_id
            (be_values,) = packet.values
            assert be_values == fe_values

    def test_allreduce_unchunked_also_works(self, net):
        comm = net.get_broadcast_communicator()
        st = net.new_stream(comm, transform=TFILTER_SUM, pattern=WAVE_REDUCE_TO_ALL)
        st.send("%d", 0)
        for rank in sorted(net.backends):
            packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
            s.send("%d", rank)
        n = len(net.backends)
        assert st.allreduce(timeout=RECV_TIMEOUT) == (n * (n - 1) // 2,)
        for rank in sorted(net.backends):
            packet, _ = net.backends[rank].recv(timeout=RECV_TIMEOUT)
            assert packet.values == (n * (n - 1) // 2,)

    def test_allreduce_rejected_on_plain_stream(self, net):
        comm = net.get_broadcast_communicator()
        st = net.new_stream(comm, transform=TFILTER_SUM)
        assert st.pattern == WAVE_REDUCE
        with pytest.raises(StreamClosed):
            st.allreduce(timeout=1)


class TestWindowFilter:
    def test_windowed_mean_across_waves(self):
        # Flat topology: the filter's sliding window lives only at the
        # front-end, so the smoothed series is directly checkable.
        net = Network(flat_topology(8))
        try:
            comm = net.get_broadcast_communicator()
            st = net.new_stream(comm, transform=TFILTER_WINDOW)
            n_ranks = len(net.backends)
            wave_totals = []
            for round_no in range(6):
                st.send("%d", 0)
                for rank in sorted(net.backends):
                    packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                    s.send("%lf", float(round_no * 100))
                wave_totals.append(round_no * 100.0 * n_ranks)
                (smoothed,) = st.recv_values(timeout=RECV_TIMEOUT)
                window = wave_totals[-4:]  # default window = 4 waves
                assert smoothed == pytest.approx(sum(window) / len(window))
        finally:
            net.shutdown()

    def test_windowed_mean_of_arrays(self):
        net = Network(flat_topology(4))
        try:
            comm = net.get_broadcast_communicator()
            st = net.new_stream(comm, transform=TFILTER_WINDOW)
            sums = []
            for round_no in range(5):
                st.send("%d", 0)
                for rank in sorted(net.backends):
                    packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                    s.send("%alf", (float(round_no), float(rank)))
                sums.append(np.array([round_no * 4.0, 0.0 + 1 + 2 + 3]))
                (smoothed,) = st.recv_values(timeout=RECV_TIMEOUT)
                window = sums[-4:]
                expect = np.mean(window, axis=0)
                assert np.allclose(np.asarray(smoothed), expect)
        finally:
            net.shutdown()
