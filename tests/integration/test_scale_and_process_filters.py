"""Medium-scale live runs and library filters across process boundaries."""

import pytest

from repro.core import Network
from repro.filters import TFILTER_SUM, TFILTER_WAVG
from repro.filters.pathtree import PathTree
from repro.topology import balanced_tree_for

RECV_TIMEOUT = 30.0


class TestMediumScaleLive:
    def test_sum_over_256_backends(self):
        """The live runtime at its intended laptop scale: a 256-leaf
        8-way tree (289 processes' worth of slots, 37 comm-node
        threads), one full reduction wave."""
        net = Network(balanced_tree_for(8, 256))
        try:
            assert net.num_internal_nodes == 36  # 4 + 32 at two levels
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", 1)
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (256,)
        finally:
            net.shutdown()

    def test_wavg_over_100_backends_three_waves(self):
        net = Network(balanced_tree_for(4, 100))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_WAVG)
            for _ in range(3):
                stream.send("%d", 0)
            for rank in sorted(net.backends):
                be = net.backends[rank]
                for _ in range(3):
                    _, bstream = be.recv(timeout=RECV_TIMEOUT)
                    bstream.send("%lf %ud", float(rank), 1)
            for _ in range(3):
                mean, count = stream.recv_values(timeout=RECV_TIMEOUT)
                assert count == 100
                assert mean == pytest.approx(49.5)
        finally:
            net.shutdown()


class TestLibraryFiltersAcrossProcesses:
    def test_eqclass_filter_over_process_transport(self):
        import repro.paradyn.eqclass as eqmod
        from repro.paradyn.eqclass import EquivalenceClasses

        net = Network(
            balanced_tree_for(2, 4),
            transport="process",
            filter_specs=[(eqmod.__file__, "eqclass_filter_func")],
        )
        try:
            (fid,) = net.filter_ids
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=fid)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                checksum = 111 if rank < 2 else 222
                bstream.send("%uld %ud", checksum, rank)
            classes = EquivalenceClasses.from_packet(
                stream.recv(timeout=RECV_TIMEOUT)
            )
            assert classes.classes == {111: (0, 1), 222: (2, 3)}
        finally:
            net.shutdown()

    def test_pathtree_filter_over_process_transport(self):
        import repro.filters.pathtree as ptmod

        net = Network(
            balanced_tree_for(2, 4),
            transport="process",
            filter_specs=[(ptmod.__file__, "pathtree_filter_func")],
        )
        try:
            (fid,) = net.filter_ids
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=fid)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%as", ("main", "work", f"phase{rank % 2}"))
            tree = PathTree.from_arrays(
                *stream.recv(timeout=RECV_TIMEOUT).unpack()
            )
            assert tree.num_processes == 4
            assert (("main", "work", "phase0"), 2) in tree.paths()
        finally:
            net.shutdown()
