"""Integration tests: the MRNet runtime over real TCP sockets.

Same tree, same protocol, but every edge is a framed loopback socket —
what the original system actually does between hosts.
"""

import pytest

from repro.core import Network
from repro.filters import TFILTER_CONCAT, TFILTER_SUM
from repro.topology import balanced_tree, flat_topology

RECV_TIMEOUT = 15.0


class TestTcpNetwork:
    def test_reduction_over_sockets(self):
        net = Network(balanced_tree(2, 2), transport="tcp")
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", rank + 1)
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (10,)
        finally:
            net.shutdown()

    def test_concat_order_over_sockets(self):
        net = Network(flat_topology(6), transport="tcp")
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_CONCAT)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%ud", rank)
            (ranks,) = stream.recv_values(timeout=RECV_TIMEOUT)
            assert ranks == (0, 1, 2, 3, 4, 5)
        finally:
            net.shutdown()

    def test_large_payload_over_sockets(self):
        """Multi-fragment socket frames survive the codec."""
        net = Network(balanced_tree(2, 2), transport="tcp")
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_CONCAT)
            blob = "x" * 50_000
            stream.send("%s", blob, tag=300)
            for rank in sorted(net.backends):
                packet, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                assert packet.values == (blob,)
                bstream.send("%ud", rank)
            (ranks,) = stream.recv_values(timeout=RECV_TIMEOUT)
            assert ranks == (0, 1, 2, 3)
        finally:
            net.shutdown()

    def test_shutdown_over_sockets(self):
        net = Network(balanced_tree(2, 2), transport="tcp")
        net.shutdown()
        for be in net.backends.values():
            assert be.recv(timeout=RECV_TIMEOUT) is None

    def test_unknown_transport_rejected(self):
        from repro.core import NetworkError

        with pytest.raises(NetworkError):
            Network(flat_topology(2), transport="carrier-pigeon")
