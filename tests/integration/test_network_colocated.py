"""End-to-end tests for the colocated runtime (tentpole acceptance).

``Network(colocate=True)`` hosts every internal process of a local
tree on ONE shared selector loop: a single ``colocated-host`` thread,
comm-to-comm edges on in-process deque links, optional filter workers
for big reductions.  These tests pin the acceptance bars:

* thread census per mode — solo eventloop (1 thread/node), colocated
  (1 thread TOTAL, i.e. well under the <= 2/node bar), legacy threads
  mode (deprecated, still 1 driver thread/node here);
* wave correctness and byte-identity with the TCP transport,
  including chunked (pipelined) waves over inproc hops;
* observability — ``links{kind="inproc"}``, ``loop_cores_hosted``,
  ``loop_threads_per_node``, worker-pool counters in ``stats()``;
* the filter worker pool actually offloads big waves off the loop.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import Network
from repro.core.network import NetworkError
from repro.filters import TFILTER_CONCAT, TFILTER_SUM
from repro.topology import balanced_tree

RECV_TIMEOUT = 10.0
CHUNK_BYTES = 4096
N_ELEMS = 4096  # 32 KiB float64 per rank, forces several chunks


def run_wave(net, stream, fmt="%d", payload=lambda rank: 2):
    stream.send("%d", 0)
    for rank in sorted(net.backends):
        packet, s = net.backends[rank].recv(timeout=RECV_TIMEOUT)
        s.send(fmt, payload(rank))
    return stream.recv(timeout=RECV_TIMEOUT)


def rank_array(rank, n=N_ELEMS):
    base = np.arange(n, dtype=np.float64)
    return tuple(((base * (rank + 1)) % 257 - 128.0).tolist())


def new_threads(before):
    return [t for t in threading.enumerate() if t not in before]


class TestThreadCensus:
    """Tentpole acceptance: steady-state thread census per comm node."""

    def test_colocated_tree_costs_one_thread(self):
        before = set(threading.enumerate())
        net = Network(balanced_tree(4, 3), colocate=True)
        try:
            fresh = new_threads(before)
            n_internal = len(net._commnodes)
            assert n_internal == 4 + 16  # depth-3 fanout-4 internals
            # ONE host thread for the whole tree: census 1/21 per node.
            assert [t.name for t in fresh] == ["colocated-host"]
            assert len(fresh) / n_internal <= 2
            result = run_wave(
                net,
                net.new_stream(
                    net.get_broadcast_communicator(), transform=TFILTER_SUM
                ),
            )
            assert result.values == (2 * len(net.backends),)
        finally:
            net.shutdown()
        deadline = time.monotonic() + 5.0
        while new_threads(before) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not new_threads(before), "colocated host thread leaked"

    def test_solo_eventloop_one_thread_per_node(self):
        before = set(threading.enumerate())
        net = Network(balanced_tree(2, 2))
        try:
            fresh = new_threads(before)
            assert len(fresh) == len(net._commnodes) == 2
            assert all(t.name.startswith("commnode-") for t in fresh)
            assert len(fresh) / len(net._commnodes) <= 2
        finally:
            net.shutdown()

    def test_legacy_threads_mode_removed(self):
        # Deprecated in PR 7, removed one release later as promised.
        with pytest.raises(NetworkError, match="io_mode"):
            Network(balanced_tree(2, 2), io_mode="threads")

    def test_colocated_with_workers_census(self):
        before = set(threading.enumerate())
        net = Network(balanced_tree(2, 3), colocate=True, filter_workers=2)
        try:
            names = sorted(t.name for t in new_threads(before))
            assert names == [
                "colocated-host", "filter-worker-0", "filter-worker-1"
            ]
            # 3 threads over 6 internal nodes: still <= 2 per node.
            assert len(names) / len(net._commnodes) <= 2
        finally:
            net.shutdown()


class TestColocationValidation:
    def test_rejects_unknown_io_mode(self):
        with pytest.raises(NetworkError, match="io_mode"):
            Network(balanced_tree(2, 2), colocate=True, io_mode="threads")

    def test_rejects_tcp(self):
        with pytest.raises(NetworkError, match="colocate"):
            Network(balanced_tree(2, 2), colocate=True, transport="tcp")

    def test_rejects_sequential_process(self):
        with pytest.raises(NetworkError, match="recursive"):
            Network(
                balanced_tree(2, 2),
                colocate=True,
                transport="process",
                instantiation="sequential",
            )

    def test_rejects_negative_workers(self):
        with pytest.raises(NetworkError, match="filter_workers"):
            Network(balanced_tree(2, 2), filter_workers=-1)


class TestColocatedObservability:
    def test_inproc_links_and_loop_gauges_in_stats(self):
        net = Network(balanced_tree(2, 3), colocate=True)
        try:
            stats = net.stats()
            nodes = [
                v for k, v in stats.items()
                if isinstance(v, dict) and "links{kind=\"inproc\"}" in v
            ]
            assert nodes, "no per-node link census in stats"
            # Depth-3: each depth-1 node parents 2 depth-2 nodes over
            # inproc; each depth-2 node holds its inproc parent end.
            assert sum(n["links{kind=\"inproc\"}"] for n in nodes) >= 8
            # The loop-level gauges appear on every HOSTED core's
            # snapshot (the passive front-end has no loop).
            on_loop = [n for n in nodes if "loop_cores_hosted" in n]
            assert on_loop
            hosted = {n["loop_cores_hosted"] for n in on_loop}
            assert hosted == {len(net._commnodes)}
            per_node = {n["loop_threads_per_node"] for n in on_loop}
            assert per_node == {1 / len(net._commnodes)}
        finally:
            net.shutdown()

    def test_worker_pool_metrics_visible(self):
        net = Network(balanced_tree(2, 2), colocate=True, filter_workers=2)
        try:
            stats = net.stats()
            nodes = [
                v for k, v in stats.items()
                if isinstance(v, dict) and "loop_worker_queue_depth" in v
            ]
            assert nodes, "worker queue depth gauge missing from stats"
            assert all(n["loop_worker_queue_depth"] == 0 for n in nodes)
        finally:
            net.shutdown()


class TestColocatedCorrectness:
    def test_sum_wave_matches_expectation(self):
        net = Network(balanced_tree(4, 3), colocate=True)
        try:
            stream = net.new_stream(
                net.get_broadcast_communicator(), transform=TFILTER_SUM
            )
            for round_no in range(3):
                result = run_wave(
                    net, stream, payload=lambda rank: rank + round_no
                )
                ranks = sorted(net.backends)
                assert result.values == (
                    sum(r + round_no for r in ranks),
                )
        finally:
            net.shutdown()

    def test_chunked_wave_byte_identical_to_tcp(self):
        """Satellite bar: a chunked pipelined wave crossing inproc
        hops must be byte-identical to the same wave over TCP."""
        results = {}
        for name, kwargs in (
            ("tcp", dict(transport="tcp")),
            ("colocated", dict(colocate=True)),
        ):
            net = Network(balanced_tree(2, 3), **kwargs)
            try:
                stream = net.new_stream(
                    net.get_broadcast_communicator(),
                    transform=TFILTER_SUM,
                    chunk_bytes=CHUNK_BYTES,
                )
                results[name] = run_wave(
                    net, stream, fmt="%alf", payload=rank_array
                )
            finally:
                net.shutdown()
        tcp, colo = results["tcp"], results["colocated"]
        assert colo.fmt.canonical == tcp.fmt.canonical
        assert colo.tag == tcp.tag
        assert colo.values == tcp.values  # bit-for-bit

    def test_concat_preserves_rank_order(self):
        net = Network(balanced_tree(2, 3), colocate=True)
        try:
            stream = net.new_stream(
                net.get_broadcast_communicator(), transform=TFILTER_CONCAT
            )
            result = run_wave(
                net, stream, fmt="%s", payload=lambda r: f"r{r}"
            )
            assert result.values == (
                tuple(f"r{r}" for r in sorted(net.backends)),
            )
        finally:
            net.shutdown()


class TestWorkerOffload:
    def test_big_waves_run_on_worker_pool(self, monkeypatch):
        from repro.core.stream_manager import StreamManager

        monkeypatch.setattr(StreamManager, "OFFLOAD_MIN_BYTES", 0)
        net = Network(balanced_tree(2, 3), colocate=True, filter_workers=2)
        try:
            stream = net.new_stream(
                net.get_broadcast_communicator(), transform=TFILTER_SUM
            )
            expect = np.sum(
                [np.asarray(rank_array(r)) for r in sorted(net.backends)],
                axis=0,
            )
            for _ in range(2):
                result = run_wave(net, stream, fmt="%alf", payload=rank_array)
                assert np.allclose(np.asarray(result.values[0]), expect)
            stats = net.stats()
            completed = [
                v.get("loop_worker_tasks_completed", 0)
                for v in stats.values()
                if isinstance(v, dict)
            ]
            assert max(completed) > 0, "no wave was offloaded to workers"
        finally:
            net.shutdown()

    def test_small_waves_stay_inline(self):
        net = Network(balanced_tree(2, 2), colocate=True, filter_workers=2)
        try:
            stream = net.new_stream(
                net.get_broadcast_communicator(), transform=TFILTER_SUM
            )
            assert run_wave(net, stream).values == (2 * len(net.backends),)
            stats = net.stats()
            offloaded = [
                v.get("loop_worker_tasks_offloaded", 0)
                for v in stats.values()
                if isinstance(v, dict)
            ]
            assert max(offloaded) == 0
        finally:
            net.shutdown()


class TestProcessColocation:
    def test_same_host_subtrees_share_processes(self):
        """transport='process' + colocate packs same-host internal
        subtree members into one OS process each (2 instead of 6)."""
        hosts = ["fe", "hA", "hB", "hA", "hA", "hB", "hB"] + [
            f"be{i}" for i in range(8)
        ]
        net = Network(
            balanced_tree(2, 3, hosts=hosts),
            transport="process",
            colocate=True,
        )
        try:
            assert len(net._procs) == 2  # one per co-location group
            stream = net.new_stream(
                net.get_broadcast_communicator(), transform=TFILTER_SUM
            )
            assert run_wave(net, stream).values == (2 * len(net.backends),)
        finally:
            net.shutdown()
