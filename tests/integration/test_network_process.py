"""Integration tests: internal processes as real OS processes.

``transport="process"`` launches one ``mrnet_commnode`` program per
internal tree node (the paper's actual architecture) and connects
everything over TCP.  These tests are the slowest in the suite (each
spawns Python interpreters), so trees are kept small.
"""

import textwrap

import pytest

from repro.core import Network, NetworkError
from repro.filters import TFILTER_CONCAT, TFILTER_MAX, TFILTER_SUM
from repro.topology import balanced_tree, flat_topology

RECV_TIMEOUT = 20.0


class TestProcessTransport:
    def test_reduction_through_real_processes(self):
        net = Network(balanced_tree(2, 2), transport="process")
        try:
            assert len(net._procs) == 2  # one OS process per internal node
            assert all(p.poll() is None for p in net._procs)  # alive
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", rank + 1)
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (10,)
        finally:
            net.shutdown()
        # Shutdown cascaded: every commnode process exited.
        assert all(p.poll() is not None for p in net._procs)

    def test_flat_topology_spawns_no_processes(self):
        net = Network(flat_topology(3), transport="process")
        try:
            assert net._procs == []
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_CONCAT)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%ud", rank)
            assert stream.recv_values(timeout=RECV_TIMEOUT) == ((0, 1, 2),)
        finally:
            net.shutdown()

    def test_custom_filter_loaded_in_every_process(self, tmp_path):
        """filter_specs ship like shared objects: path + name, loaded
        in the same order everywhere, so ids agree network-wide."""
        mod = tmp_path / "squares.py"
        mod.write_text(
            textwrap.dedent(
                """
                def sum_of_squares(packets, state):
                    total = sum(p.values[0] ** 2 for p in packets)
                    return [packets[0].replace(values=(total,))]
                """
            )
        )
        net = Network(
            balanced_tree(2, 2),
            transport="process",
            filter_specs=[(str(mod), "sum_of_squares")],
        )
        try:
            (fid,) = net.filter_ids
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=fid)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", rank + 1)
            # (1²+2²)² + (3²+4²)² at the front-end level.
            expected = (1 + 4) ** 2 + (9 + 16) ** 2
            assert stream.recv_values(timeout=RECV_TIMEOUT) == (expected,)
        finally:
            net.shutdown()

    def test_multiple_streams_across_processes(self):
        net = Network(balanced_tree(2, 2), transport="process")
        try:
            comm = net.get_broadcast_communicator()
            s_sum = net.new_stream(comm, transform=TFILTER_SUM)
            s_max = net.new_stream(comm, transform=TFILTER_MAX)
            s_sum.send("%d", 0, tag=201)
            s_max.send("%d", 0, tag=202)
            for rank in sorted(net.backends):
                be = net.backends[rank]
                for _ in range(2):
                    packet, stream = be.recv(timeout=RECV_TIMEOUT)
                    stream.send("%d", rank if packet.tag == 201 else 100 + rank)
            assert s_sum.recv_values(timeout=RECV_TIMEOUT) == (6,)
            assert s_max.recv_values(timeout=RECV_TIMEOUT) == (103,)
        finally:
            net.shutdown()


class TestCommnodeProgram:
    def test_filter_spec_parsing(self):
        from repro.mrnet_commnode import parse_filter_spec

        assert parse_filter_spec("/p/m.py:f") == ("/p/m.py", "f", None)
        assert parse_filter_spec("/p/m.py:f:%d") == ("/p/m.py", "f", "%d")
        with pytest.raises(ValueError):
            parse_filter_spec("just-a-path")
        with pytest.raises(ValueError):
            parse_filter_spec("a:b:c:d")

    def test_cli_rejects_bad_parent(self, capsys):
        from repro.mrnet_commnode import main

        with pytest.raises(SystemExit):
            main(["--parent", "nocolon", "--children", "1",
                  "--expected-ranks", "1"])

    def test_unknown_transport_still_rejected(self):
        with pytest.raises(NetworkError):
            Network(flat_topology(2), transport="smoke-signals")
