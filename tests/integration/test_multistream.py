"""End-to-end many-stream runtime: bulk ``Network.new_streams()``
with lazy per-node materialization, cached group routing under live
membership churn, and ``Network.rebalance()`` re-homing back-ends off
hot subtrees with the elastic-membership machinery."""

import time

import pytest

from repro.core import REPAIR, Network
from repro.core.network import NetworkError
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree

from ..fault.conftest import drive_wave, shutdown_nets, wait_until  # noqa: F401
from ..fault.test_membership import waves_until_sum

WAVE_TIMEOUT = 10.0


def internal_cores(net):
    return [node.core for node in net._commnodes]


class TestBulkStreams:
    def test_bulk_creation_is_lazy_until_first_wave(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), colocate=True, policy=REPAIR)
        shutdown_nets.append(net)
        comm = net.get_broadcast_communicator()
        streams = net.new_streams(
            [(comm, {"transform": TFILTER_SUM}) for _ in range(20)]
        )
        assert len(streams) == 20
        assert len({s.stream_id for s in streams}) == 20

        # The whole batch is announced but NO manager exists anywhere
        # until a stream carries data.
        last = streams[-1].stream_id
        assert wait_until(
            lambda: all(
                last in core._stream_specs or last in core.streams
                for core in internal_cores(net)
            ),
            net=net,
            poll=False,
            timeout=5.0,
        )
        for core in internal_cores(net):
            assert core.streams == {}
            assert len(core._stream_specs) == 20

        # Touch three streams: exactly those materialize, per node.
        for stream in streams[:3]:
            assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)
        touched = {s.stream_id for s in streams[:3]}
        for core in internal_cores(net):
            assert set(core.streams) == touched
            assert len(core._stream_specs) == 17

        # Closing works on both materialized and still-lazy streams.
        for stream in streams:
            stream.close()
        assert wait_until(
            lambda: all(
                not core.streams and not core._stream_specs
                for core in internal_cores(net)
            ),
            net=net,
            poll=False,
            timeout=5.0,
        ), "close did not reach every node for every stream"

    def test_backends_learn_bulk_streams_after_poll(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), colocate=True, policy=REPAIR)
        shutdown_nets.append(net)
        comm = net.get_broadcast_communicator()
        streams = net.new_streams([comm, comm])  # bare-communicator form
        want = {s.stream_id for s in streams}

        def all_know():
            for be in net.backends.values():
                while be.poll():
                    pass
            return all(
                want <= set(be.stream_ids) for be in net.backends.values()
            )

        assert wait_until(all_know, net=net, poll=False, timeout=5.0)
        # The handles are live: a back-end can send unprompted.
        be = net.backends[0]
        be.get_stream(streams[0].stream_id)

    def test_bulk_streams_survive_membership_churn(self, shutdown_nets):
        """A stream created in bulk but never touched must still see
        the post-churn membership when it finally materializes."""
        net = Network(balanced_tree(2, 2), colocate=True, policy=REPAIR)
        shutdown_nets.append(net)
        comm = net.get_broadcast_communicator()
        lazy, eager = net.new_streams(
            [(comm, {"transform": TFILTER_SUM}) for _ in range(2)]
        )
        assert drive_wave(net, eager, WAVE_TIMEOUT).values == (4,)

        net.backends[3].leave()
        waves_until_sum(net, eager, 3, allowed={3, 4})

        # First wave on the lazy stream: materializes against the
        # SHRUNK membership, so it completes with three members.
        assert drive_wave(net, lazy, WAVE_TIMEOUT).values == (3,)

    def test_new_streams_validation(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), colocate=True)
        shutdown_nets.append(net)
        comm = net.get_broadcast_communicator()
        with pytest.raises(NetworkError, match="unknown stream option"):
            net.new_streams([(comm, {"bogus": 1})])
        with pytest.raises(NetworkError, match="transformation filter"):
            net.new_streams([(comm, {"transform": 424242})])
        # A failed batch creates nothing.
        assert net.new_streams([]) == []


class TestCachedRoutesUnderChurn:
    def test_cached_routes_match_uncached_at_every_core(self, shutdown_nets):
        """Live-network version of the cache-transparency invariant:
        after every membership event, every internal node's cached
        ``links_for`` must equal the uncached intersection scan."""
        net = Network(balanced_tree(2, 2), colocate=True, policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )

        def assert_caches_transparent():
            for core in internal_cores(net):
                rt = core.routing
                for eps in (
                    frozenset(rt.all_ranks()),
                    frozenset({0}),
                    frozenset({0, 99}),
                ):
                    assert rt.links_for(eps) == rt._compute_links(eps), (
                        f"cache diverged at {core.name} epoch {rt.epoch}"
                    )

        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)
        assert_caches_transparent()

        net.attach_backend()
        waves_until_sum(net, stream, 5, allowed={4, 5})
        assert_caches_transparent()

        net.backends[0].leave()
        waves_until_sum(net, stream, 4, allowed={4, 5})
        assert_caches_transparent()


class TestRebalance:
    def test_moves_backend_off_the_hot_node(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), colocate=True, policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)

        # Force a synthetic hot spot on a comm node that actually
        # parents back-ends (depth-1 nodes here).
        parent_keys = {
            m.parent_key for m in net._recovery.members("backend")
        }
        hot_key = sorted(parent_keys)[0]
        hot_core = net._recovery.member(hot_key).core

        moves = net.rebalance(
            load_fn=lambda core: 1000.0 if core is hot_core else 0.0
        )
        assert len(moves) == 1
        (move,) = moves
        assert move["from"] == hot_key
        assert move["to"] != hot_key
        rank = move["rank"]
        # The returned handle replaces the detached one.
        assert net.backends[rank] is move["backend"]
        assert move["backend"].connected

        # Waves keep flowing over the full membership; the re-joined
        # rank re-enters at a wave-epoch boundary, so a transitional
        # 3-sum is legal but it must settle back to 4.
        waves_until_sum(net, stream, 4, allowed={3, 4})
        recovery = net.stats()["recovery"]
        assert recovery["members_left"] >= 1
        assert recovery["members_joined"] >= 1
        assert recovery["nodes_failed"] == 0

    def test_balanced_tree_is_left_alone(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), colocate=True, policy=REPAIR)
        shutdown_nets.append(net)
        # Uniform load: the hottest candidate is no hotter than the
        # best alternative, so the actuator never fires.
        assert net.rebalance(load_fn=lambda core: 1.0) == []
        assert sorted(net.backends) == [0, 1, 2, 3]

    def test_requires_thread_hosted_transport(self, shutdown_nets):
        net = Network(balanced_tree(2, 2), transport="process")
        shutdown_nets.append(net)
        with pytest.raises(NetworkError, match="process"):
            net.rebalance()

    def test_repeated_rebalance_converges(self, shutdown_nets):
        """A standing hot spot is drained one back-end per move and
        the loop stops when the node has nothing left to give."""
        net = Network(balanced_tree(2, 2), colocate=True, policy=REPAIR)
        shutdown_nets.append(net)
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        assert drive_wave(net, stream, WAVE_TIMEOUT).values == (4,)
        hot_key = sorted(
            {m.parent_key for m in net._recovery.members("backend")}
        )[0]
        hot_core = net._recovery.member(hot_key).core
        moves = net.rebalance(
            max_moves=5,
            load_fn=lambda core: 1000.0 if core is hot_core else 0.0,
        )
        # Both of the hot node's back-ends moved away, then the
        # candidate pool emptied and the loop stopped early.
        assert 1 <= len(moves) <= 2
        assert all(m["from"] == hot_key for m in moves)
        waves_until_sum(net, stream, 4, allowed={2, 3, 4})
