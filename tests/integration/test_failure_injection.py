"""Failure-injection tests over the live runtime.

The paper defers reliability to future work, but the implementation
must at least degrade gracefully: a dying back-end closes its channel,
its parent releases held packets, routes around the corpse, and the
rest of the tool keeps working.
"""

import pytest

from repro.core import Network, NetworkShutdown
from repro.filters import TFILTER_CONCAT, TFILTER_SUM
from repro.topology import balanced_tree, flat_topology

RECV_TIMEOUT = 10.0


def kill_backend(net, rank):
    """Simulate a back-end process dying: its connection drops."""
    net._slots[rank].parent_end.close()


class TestBackendDeath:
    def test_waiting_reduction_unblocks(self):
        """A Wait-For-All reduction must not wedge when a contributor
        dies: the survivors' partial aggregate reaches the front-end."""
        net = Network(balanced_tree(2, 2))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            stream.send("%d", 0)
            for rank in (0, 1, 2):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%d", 10)
            net.backends[3].recv(timeout=RECV_TIMEOUT)
            kill_backend(net, 3)
            total = 0
            while total < 30:
                total += stream.recv(timeout=RECV_TIMEOUT).values[0]
            assert total == 30
        finally:
            net.shutdown()

    def test_subsequent_waves_work_without_the_dead(self):
        net = Network(balanced_tree(2, 2))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            kill_backend(net, 0)
            # Give the comm node a moment to process the closure, then run
            # a full wave with the survivors.
            stream.send("%d", 0)
            for rank in (1, 2, 3):
                got = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                assert got is not None
                _, bstream = got
                bstream.send("%d", rank)
            total = 0
            while total < 6:
                total += stream.recv(timeout=RECV_TIMEOUT).values[0]
            assert total == 6
        finally:
            net.shutdown()

    def test_dead_backend_send_raises(self):
        net = Network(flat_topology(3))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_SUM)
            stream.send("%d", 0)
            _, bstream = net.backends[0].recv(timeout=RECV_TIMEOUT)
            kill_backend(net, 0)
            with pytest.raises(NetworkShutdown):
                bstream.send("%d", 1)
        finally:
            net.shutdown()

    def test_concat_skips_dead_contributor(self):
        net = Network(balanced_tree(2, 2))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_CONCAT)
            kill_backend(net, 2)
            stream.send("%d", 0)
            for rank in (0, 1, 3):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%ud", rank)
            collected = []
            while len(collected) < 3:
                (chunk,) = stream.recv(timeout=RECV_TIMEOUT).unpack()
                collected.extend(chunk)
            assert sorted(collected) == [0, 1, 3]
        finally:
            net.shutdown()


class TestWholeSubtreeDeath:
    def test_internal_node_parent_closure_cascades(self):
        """Killing an internal process's parent link shuts its subtree."""
        net = Network(balanced_tree(2, 2))
        try:
            victim = net._commnodes[0]
            # The front-end's side of the victim's uplink dies.
            net._core.children[victim.core.parent_link_id].close()
            victim.join(timeout=5)
            assert not victim.is_alive()
            # Its two back-ends observe shutdown; the others stay alive.
            dead_ranks = set()
            for rank in sorted(net.backends):
                try:
                    if net.backends[rank].recv(timeout=0.5) is None:
                        dead_ranks.add(rank)
                except TimeoutError:
                    pass  # healthy back-end with nothing to receive
            assert len(dead_ranks) == 2
        finally:
            net.shutdown()
