"""Integration tests: the full Paradyn tool over the live MRNet runtime.

This is the paper's §3 exercised end to end — start-up protocol with
concatenation and equivalence-class streams, representative requests,
and distributed time-aligned performance data aggregation — all over
real comm-node threads and the packet codec.
"""

import pytest

from repro.core import Network
from repro.paradyn import (
    ParadynDaemon,
    ParadynFrontEnd,
    default_metrics,
    synthetic_executable,
)
from repro.topology import balanced_tree, flat_topology


def build_tool(topo, exe_for_rank=None, n_functions=40, offsets=None):
    net = Network(topo)
    default_exe = synthetic_executable(n_functions=n_functions)
    daemons = []
    for rank in sorted(net.backends):
        exe = exe_for_rank(rank) if exe_for_rank else default_exe
        offset = offsets[rank] if offsets else 0.0
        daemons.append(
            ParadynDaemon(net.backends[rank], exe, clock_offset=offset)
        )
    return net, ParadynFrontEnd(net), daemons


class TestStartupProtocol:
    def test_full_startup_homogeneous(self):
        net, fe, daemons = build_tool(balanced_tree(2, 2))
        try:
            report = fe.run_startup(daemons, default_metrics(6))
            assert len(report.daemons) == 4
            assert report.done_count == 4
            # Homogeneous executables collapse to one equivalence class,
            # as on Blue Pacific (§3.1).
            assert report.code_classes.num_classes == 1
            assert report.callgraph_classes.num_classes == 1
            assert report.metric_classes.num_classes == 1
            # Full code data came from exactly one representative.
            assert len(report.code_resources) == 1
            (functions,) = report.code_resources.values()
            assert len(functions) == 40
            # Machine resources concatenated from every daemon.
            assert len(report.machine_resources) == 4 * 3
            assert len(report.metric_names) == 6
        finally:
            net.shutdown()

    def test_heterogeneous_executables_make_two_classes(self):
        exe_a = synthetic_executable(n_functions=40, variant=0)
        exe_b = synthetic_executable(n_functions=40, variant=1)
        net, fe, daemons = build_tool(
            balanced_tree(2, 2),
            exe_for_rank=lambda r: exe_a if r < 2 else exe_b,
        )
        try:
            report = fe.run_startup(daemons, default_metrics(4))
            assert report.code_classes.num_classes == 2
            assert len(report.code_resources) == 2
            members = sorted(
                tuple(m) for m in report.code_classes.classes.values()
            )
            assert members == [(0, 1), (2, 3)]
        finally:
            net.shutdown()

    def test_clock_skews_collected(self):
        offsets = {0: 0.0, 1: 0.001, 2: -0.002, 3: 0.0035}
        net, fe, daemons = build_tool(balanced_tree(2, 2), offsets=offsets)
        try:
            fe.find_clock_skew(daemons)
            assert fe.report.clock_skews == pytest.approx(offsets)
        finally:
            net.shutdown()

    def test_flat_topology_also_works(self):
        """The protocol is topology-independent."""
        net, fe, daemons = build_tool(flat_topology(5))
        try:
            report = fe.run_startup(daemons, default_metrics(3))
            assert report.done_count == 5
            assert report.code_classes.num_classes == 1
        finally:
            net.shutdown()

    def test_daemon_rejects_unknown_tag(self):
        net, fe, daemons = build_tool(flat_topology(2))
        try:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm)
            stream.send("%d", 0, tag=9999)
            with pytest.raises(ValueError):
                while True:
                    for d in daemons:
                        d.service()
        finally:
            net.shutdown()


class TestMonitoringPhase:
    def test_distributed_time_aligned_aggregation(self):
        """§3.2 end-to-end: daemon samples with skewed clocks aggregate
        into exact global samples through the tree of filters."""
        offsets = {r: 0.01 * r for r in range(4)}
        net, fe, daemons = build_tool(balanced_tree(2, 2), offsets=offsets)
        try:
            fe.run_startup(daemons, default_metrics(2))
            fe.enable_metric(daemons, "cpu_time", interval=0.5)
            # Each daemon reports rate-1.0 CPU over [0, 2) of *true* time
            # in four 0.5 s samples; emit_sample applies the daemon's
            # clock offset to the timestamps.
            for d in daemons:
                for k in range(4):
                    d.emit_sample(
                        "cpu_time",
                        0.5,
                        k * 0.5 - d.clock_offset,
                        (k + 1) * 0.5 - d.clock_offset,
                    )
            samples = fe.collect_samples("cpu_time", 3)
            for i, s in enumerate(samples):
                assert s.start == pytest.approx(i * 0.5)
                assert s.end == pytest.approx((i + 1) * 0.5)
                assert s.value == pytest.approx(4 * 0.5)
        finally:
            net.shutdown()

    def test_multiple_metrics_simultaneously(self):
        """'multiple operations can be active simultaneously' (§1)."""
        net, fe, daemons = build_tool(balanced_tree(2, 2))
        try:
            fe.run_startup(daemons, default_metrics(2))
            fe.enable_metric(daemons, "cpu_time", interval=1.0, op="sum")
            fe.enable_metric(daemons, "cpu_utilization", interval=1.0, op="avg")
            for d in daemons:
                d.emit_sample("cpu_time", 2.0, 0.0, 1.0)
                d.emit_sample("cpu_utilization", 0.5, 0.0, 1.0)
            (total,) = fe.collect_samples("cpu_time", 1)
            (util,) = fe.collect_samples("cpu_utilization", 1)
            assert total.value == pytest.approx(8.0)
            assert util.value == pytest.approx(0.5)
        finally:
            net.shutdown()

    def test_emit_before_enable_raises(self):
        net, fe, daemons = build_tool(flat_topology(2))
        try:
            with pytest.raises(KeyError):
                daemons[0].emit_sample("cpu_time", 1.0, 0.0, 1.0)
        finally:
            net.shutdown()
