"""Smoke tests: every shipped example runs green, end to end.

Examples are the repository's public face; each one self-asserts its
claims, so running them is a real (if coarse) integration test.  They
execute in a temp directory so artifact-writing examples stay clean.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _example_env() -> dict:
    """Subprocess env with ``src`` on PYTHONPATH so ``import repro`` works."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def test_example_inventory():
    """The README promises these examples; renaming one should fail loudly."""
    assert set(ALL_EXAMPLES) == {
        "quickstart.py",
        "perf_monitor.py",
        "cluster_admin.py",
        "clock_skew_demo.py",
        "topology_explorer.py",
        "stack_trace_merge.py",
        "bottleneck_search.py",
        "sim_playground.py",
    }


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        cwd=tmp_path,
        env=_example_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert "OK" in result.stdout
