"""Property-based end-to-end tests: random workloads through live trees.

Hypothesis drives topology shape, filter choice, and back-end values;
the assertions are the algebraic ground truths (sum/min/max/concat over
whatever the back-ends sent).  Kept to few examples per property —
every example boots a real threaded network.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Network
from repro.filters import (
    TFILTER_CONCAT,
    TFILTER_MAX,
    TFILTER_MIN,
    TFILTER_SUM,
    TFILTER_WAVG,
)
from repro.topology import balanced_tree_for, flat_topology

RECV_TIMEOUT = 15.0

_slow = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_reduction(topology, transform, fmt, values, combine):
    with Network(topology) as net:
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=transform)
        stream.send("%d", 0)
        for rank in sorted(net.backends):
            _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
            bstream.send(fmt, values[rank])
        result = stream.recv(timeout=RECV_TIMEOUT)
    return result


class TestReductionProperties:
    @_slow
    @given(
        fanout=st.integers(2, 5),
        values=st.lists(
            st.integers(-(10**6), 10**6), min_size=2, max_size=24
        ),
    )
    def test_sum_over_any_tree(self, fanout, values):
        topo = balanced_tree_for(fanout, len(values))
        result = run_reduction(topo, TFILTER_SUM, "%d", values, sum)
        assert result.values == (sum(values),)

    @_slow
    @given(
        values=st.lists(
            st.integers(-(10**6), 10**6), min_size=2, max_size=20
        )
    )
    def test_minmax_over_flat_and_tree(self, values):
        for topo in (flat_topology(len(values)), balanced_tree_for(3, len(values))):
            assert run_reduction(topo, TFILTER_MIN, "%d", values, min).values == (
                min(values),
            )
        topo = balanced_tree_for(2, len(values))
        assert run_reduction(topo, TFILTER_MAX, "%d", values, max).values == (
            max(values),
        )

    @_slow
    @given(
        fanout=st.integers(2, 4),
        values=st.lists(st.integers(0, 10**6), min_size=2, max_size=20),
    )
    def test_concat_preserves_rank_order(self, fanout, values):
        topo = balanced_tree_for(fanout, len(values))
        result = run_reduction(topo, TFILTER_CONCAT, "%ud", values, None)
        assert result.values == (tuple(values),)

    @_slow
    @given(
        fanout=st.integers(2, 4),
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=20
        ),
    )
    def test_weighted_average_exact_over_any_tree(self, fanout, values):
        with Network(balanced_tree_for(fanout, len(values))) as net:
            comm = net.get_broadcast_communicator()
            stream = net.new_stream(comm, transform=TFILTER_WAVG)
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=RECV_TIMEOUT)
                bstream.send("%lf %ud", values[rank], 1)
            mean, count = stream.recv_values(timeout=RECV_TIMEOUT)
        assert count == len(values)
        assert mean == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-9)
