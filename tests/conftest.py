"""Suite-wide guards.

Every test must leave the process with zero mapped shared-memory
segments: a forgotten ``close()``/``unlink()`` becomes a hard failure
in the offending test, not an interpreter-exit ResourceWarning nobody
reads.  The short grace poll lets reader threads finish releasing
ends that were closed at the very end of a test.
"""

import time

import pytest

from repro.transport.shm import live_segments


@pytest.fixture(autouse=True)
def _no_leaked_shm_segments():
    yield
    deadline = time.monotonic() + 2.0
    while live_segments() and time.monotonic() < deadline:
        time.sleep(0.01)
    leaked = live_segments()
    assert not leaked, f"test leaked shared-memory segments: {leaked}"
