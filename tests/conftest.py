"""Suite-wide guards.

Every test must leave the process with zero mapped shared-memory
segments: a forgotten ``close()``/``unlink()`` becomes a hard failure
in the offending test, not an interpreter-exit ResourceWarning nobody
reads.  The short grace poll lets reader threads finish releasing
ends that were closed at the very end of a test.

Likewise for threads: every runtime thread this codebase can start —
comm-node drivers, reader threads, the colocated host, filter workers
— must be gone when a test returns.  A shutdown path that forgets one
fails the offending test by name instead of silently accumulating
threads across the suite.
"""

import threading
import time

import pytest

from repro.transport.shm import live_segments

# Thread-name prefixes this runtime creates; anything else alive after
# a test (pytest internals, third-party pools) is not ours to police.
_RUNTIME_THREAD_PREFIXES = (
    "commnode-",
    "colocated-host",
    "filter-worker-",
    "tcp-reader-",
    "shm-reader-",
    "drain-",
    "attach",
    "accept-rank",
    "leaf-acceptor",
)


def _runtime_threads():
    return [
        t for t in threading.enumerate()
        if t.name.startswith(_RUNTIME_THREAD_PREFIXES)
    ]


@pytest.fixture(autouse=True)
def _no_leaked_shm_segments():
    yield
    deadline = time.monotonic() + 2.0
    while live_segments() and time.monotonic() < deadline:
        time.sleep(0.01)
    leaked = live_segments()
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


@pytest.fixture(autouse=True)
def _no_leaked_runtime_threads():
    before = set(threading.enumerate())
    yield
    deadline = time.monotonic() + 4.0
    while time.monotonic() < deadline:
        fresh = [t for t in _runtime_threads() if t not in before]
        if not fresh:
            return
        time.sleep(0.02)
    assert not fresh, (
        "test leaked runtime threads: "
        f"{sorted(t.name for t in fresh)}"
    )
