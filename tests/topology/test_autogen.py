"""Tests for the automatic configuration generator (§4.1)."""

import pytest

from repro.topology import TopologyError, parse_config
from repro.topology.autogen import generate_config, generate_topology


def hosts(n, prefix="h"):
    return [f"{prefix}{i:03d}" for i in range(n)]


class TestDedicatedPlacement:
    def test_one_process_per_host(self):
        spec = generate_topology(hosts(100), n_backends=64, fanout=8)
        assert spec.num_backends == 64
        assert len(spec.hosts()) == len(spec)  # nothing co-located

    def test_front_end_gets_first_host(self):
        spec = generate_topology(hosts(30), n_backends=16, fanout=4)
        assert spec.root.host == "h000"

    def test_auto_backend_count_fits_partition(self):
        spec = generate_topology(hosts(64), fanout=8)
        assert 1 + spec.num_internal + spec.num_backends <= 64
        # Uses most of the partition.
        assert spec.num_backends >= 48

    def test_insufficient_hosts_rejected(self):
        with pytest.raises(TopologyError):
            generate_topology(hosts(10), n_backends=64, fanout=4)

    def test_flat_dedicated(self):
        spec = generate_topology(hosts(10), flat=True)
        assert spec.depth == 1
        assert spec.num_backends == 9
        assert spec.root.host == "h000"
        assert all(leaf.host != "h000" for leaf in spec.leaves())

    def test_flat_dedicated_needs_two_hosts(self):
        with pytest.raises(TopologyError):
            generate_topology(hosts(1), flat=True)


class TestColocatedPlacement:
    def test_packs_round_robin(self):
        spec = generate_topology(
            hosts(8), n_backends=32, fanout=4, placement="colocated"
        )
        assert spec.num_backends == 32
        assert set(spec.hosts()) <= set(hosts(8))
        # More processes than hosts: some host carries several.
        assert len(spec) > 8

    def test_flat_colocated(self):
        spec = generate_topology(hosts(4), flat=True, placement="colocated")
        assert spec.num_backends == 4


class TestValidation:
    def test_empty_hosts(self):
        with pytest.raises(TopologyError):
            generate_topology([])

    def test_duplicate_hosts_deduped(self):
        spec = generate_topology(["a", "a", "b", "b", "c"], flat=True)
        assert spec.num_backends == 2

    def test_unknown_placement(self):
        with pytest.raises(TopologyError):
            generate_topology(hosts(4), placement="somewhere")


class TestConfigOutput:
    def test_config_parses_back(self):
        text = generate_config(hosts(40), n_backends=25, fanout=5)
        spec = parse_config(text)
        assert spec.num_backends == 25
        assert "auto-generated" in text

    def test_cli_entry(self, tmp_path, capsys):
        from repro.topology.autogen import _main

        hostfile = tmp_path / "hosts.txt"
        hostfile.write_text("# partition\n" + "\n".join(hosts(20)) + "\n")
        assert _main([str(hostfile), "--fanout", "4", "--backends", "12"]) == 0
        out = capsys.readouterr().out
        spec = parse_config(out)
        assert spec.num_backends == 12
        assert spec.max_fanout <= 4
