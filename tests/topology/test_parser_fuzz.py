"""Fuzz tests: the configuration parser must never crash unexpectedly.

Arbitrary text either parses to a valid tree or raises
:class:`TopologyError` — no other exception type escapes (tool
front-ends hand these files to users, so crash hygiene matters).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import TopologyError, parse_config, serialize_config

_config_alphabet = st.sampled_from(
    list("abcxyz012 :;=>#\n\t") + ["=>", " ; ", "h:0 ", "# c\n"]
)


class TestParserFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.lists(_config_alphabet, max_size=40).map("".join))
    def test_config_like_soup(self, text):
        try:
            spec = parse_config(text)
        except TopologyError:
            return
        # Anything that parses must be a sane tree that round-trips.
        assert len(spec) >= 2
        again = parse_config(serialize_config(spec))
        assert [n.label for n in again.nodes()] == [
            n.label for n in spec.nodes()
        ]

    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=60))
    def test_arbitrary_unicode(self, text):
        try:
            parse_config(text)
        except TopologyError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="ab", min_size=1, max_size=3),
                st.integers(0, 3),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_structured_productions(self, labels):
        """Even structurally plausible productions with repeated labels
        fail cleanly (duplicates, cycles, multiple roots → TopologyError)."""
        lines = []
        for i, (host, idx) in enumerate(labels):
            child_host, child_idx = labels[(i + 1) % len(labels)]
            lines.append(f"{host}:{idx} => {child_host}:{child_idx} ;")
        try:
            parse_config("\n".join(lines))
        except TopologyError:
            pass


class TestMDLFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=80))
    def test_mdl_never_crashes(self, text):
        from repro.paradyn.mdl import MDLError, parse_mdl

        try:
            metrics = parse_mdl(text)
        except MDLError:
            return
        assert metrics  # successful parses yield at least one metric


class TestFormatFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.text(alphabet="%audlfscb ax", max_size=20))
    def test_format_strings_never_crash(self, text):
        from repro.core.formats import FormatError, parse_format

        try:
            fmt = parse_format(text)
        except FormatError:
            return
        # Valid formats round-trip through their canonical form.
        assert parse_format(fmt.canonical) == fmt
