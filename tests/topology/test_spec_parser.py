"""Tests for topology spec, config parsing, and serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    TopologyError,
    TopologyNode,
    TopologySpec,
    balanced_tree,
    flat_topology,
    parse_config,
    serialize_config,
)


def small_tree() -> TopologySpec:
    root = TopologyNode("fe", 0)
    a = root.add_child(TopologyNode("n1", 0))
    b = root.add_child(TopologyNode("n2", 0))
    a.add_child(TopologyNode("be1", 0))
    a.add_child(TopologyNode("be2", 0))
    b.add_child(TopologyNode("be3", 0))
    return TopologySpec(root)


class TestSpec:
    def test_leaves_in_rank_order(self):
        spec = small_tree()
        assert [n.host for n in spec.leaves()] == ["be1", "be2", "be3"]

    def test_counts(self):
        spec = small_tree()
        assert len(spec) == 6
        assert spec.num_backends == 3
        assert spec.num_internal == 2
        assert spec.depth == 2
        assert spec.max_fanout == 2

    def test_parent_and_level(self):
        spec = small_tree()
        be1 = spec.find("be1", 0)
        assert spec.parent_of(be1).host == "n1"
        assert spec.level_of(be1) == 2
        assert spec.level_of(spec.root) == 0
        assert spec.parent_of(spec.root) is None

    def test_duplicate_slot_rejected(self):
        root = TopologyNode("h", 0)
        root.add_child(TopologyNode("h", 0))
        with pytest.raises(TopologyError):
            TopologySpec(root)

    def test_trivial_rejected_by_default(self):
        with pytest.raises(TopologyError):
            TopologySpec(TopologyNode("solo", 0))
        TopologySpec(TopologyNode("solo", 0), allow_trivial=True)

    def test_find_unknown_raises(self):
        with pytest.raises(TopologyError):
            small_tree().find("nope", 0)

    def test_contains(self):
        spec = small_tree()
        assert ("fe", 0) in spec
        assert ("fe", 1) not in spec

    def test_hosts_order(self):
        assert small_tree().hosts() == ["fe", "n1", "be1", "be2", "n2", "be3"]

    def test_empty_host_rejected(self):
        root = TopologyNode("", 0)
        root.add_child(TopologyNode("x", 0))
        with pytest.raises(TopologyError):
            TopologySpec(root)

    def test_negative_index_rejected(self):
        root = TopologyNode("a", 0)
        root.add_child(TopologyNode("b", -1))
        with pytest.raises(TopologyError):
            TopologySpec(root)


class TestParser:
    CONFIG = """
    # example topology
    fe:0 => n1:0 n2:0 ;
    n1:0 => be1:0 be2:0 ;
    n2:0 => be3:0 ;
    """

    def test_parse(self):
        spec = parse_config(self.CONFIG)
        assert spec.root.label == "fe:0"
        assert spec.num_backends == 3
        assert [n.label for n in spec.leaves()] == ["be1:0", "be2:0", "be3:0"]

    def test_comments_stripped(self):
        spec = parse_config("a:0 => b:0 ; # trailing comment\n# whole line\n")
        assert len(spec) == 2

    def test_colocated_indices(self):
        spec = parse_config("host:0 => host:1 host:2 ;")
        assert spec.num_backends == 2
        assert spec.root.key == ("host", 0)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "a:0 b:0 ;",  # missing =>
            "a:0 => ;",  # no children
            "a:0 => b:0",  # missing ;
            "a:0 => b:0 ; a:0 => c:0 ;",  # duplicate production
            "a:0 => b:0 ; c:0 => b:0 ;",  # child claimed twice
            "a:0 => b:0 ; c:0 => d:0 ;",  # two roots
            "a => b:0 ;",  # malformed label
            "a:x => b:0 ;",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(TopologyError):
            parse_config(bad)

    def test_cycle_rejected(self):
        # a => b, b => a has no root (both appear as children).
        with pytest.raises(TopologyError):
            parse_config("a:0 => b:0 ; b:0 => a:0 ;")

    def test_serialize_roundtrip(self):
        spec = small_tree()
        text = serialize_config(spec, header="generated")
        again = parse_config(text)
        assert [n.label for n in again.nodes()] == [n.label for n in spec.nodes()]
        assert "# generated" in text

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 3))
    def test_serialize_roundtrip_generated(self, fanout, depth):
        spec = balanced_tree(fanout, depth)
        again = parse_config(serialize_config(spec))
        assert again.num_backends == spec.num_backends
        assert again.depth == spec.depth
        assert [n.label for n in again.leaves()] == [n.label for n in spec.leaves()]

    def test_flat_roundtrip(self):
        spec = flat_topology(10)
        again = parse_config(serialize_config(spec))
        assert again.num_backends == 10 and again.depth == 1
