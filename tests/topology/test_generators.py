"""Tests for topology generators and analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    HostAllocator,
    TopologyError,
    analyze,
    balanced_tree,
    balanced_tree_for,
    binomial_tree,
    flat_topology,
    is_balanced,
    knomial_tree,
    levels,
    to_networkx,
    unbalanced_fig4,
)


class TestFlat:
    def test_shape(self):
        spec = flat_topology(16)
        assert spec.depth == 1
        assert spec.num_backends == 16
        assert spec.num_internal == 0
        assert len(spec.root.children) == 16

    def test_minimum(self):
        assert flat_topology(1).num_backends == 1
        with pytest.raises(TopologyError):
            flat_topology(0)


class TestBalanced:
    def test_fully_populated(self):
        spec = balanced_tree(4, 2)
        assert spec.num_backends == 16
        assert spec.num_internal == 4
        assert spec.depth == 2
        assert is_balanced(spec)

    def test_paper_fig4a(self):
        """Figure 4a: fan-out-2 depth-4 tree reaching 16 back-ends."""
        spec = balanced_tree(2, 4)
        assert spec.num_backends == 16
        assert spec.max_fanout == 2
        assert spec.depth == 4

    def test_validation(self):
        with pytest.raises(TopologyError):
            balanced_tree(1, 2)
        with pytest.raises(TopologyError):
            balanced_tree(2, 0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 6), st.integers(1, 3))
    def test_leaf_count(self, fanout, depth):
        spec = balanced_tree(fanout, depth)
        assert spec.num_backends == fanout**depth
        assert is_balanced(spec)
        assert all(len(n.children) in (0, fanout) for n in spec.nodes())


class TestBalancedFor:
    def test_exact_power(self):
        spec = balanced_tree_for(4, 64)
        assert spec.num_backends == 64
        assert spec.max_fanout == 4

    def test_small_goes_flat(self):
        spec = balanced_tree_for(8, 5)
        assert spec.depth == 1 and spec.num_backends == 5

    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 8), st.integers(1, 600))
    def test_arbitrary_counts(self, fanout, n):
        spec = balanced_tree_for(fanout, n)
        assert spec.num_backends == n
        assert spec.max_fanout <= fanout
        # All leaves at the same depth.
        depths = {spec.level_of(leaf) for leaf in spec.leaves()}
        assert len(depths) == 1

    def test_validation(self):
        with pytest.raises(TopologyError):
            balanced_tree_for(1, 4)
        with pytest.raises(TopologyError):
            balanced_tree_for(2, 0)


class TestBinomialKnomial:
    def test_binomial_sizes(self):
        for order in range(1, 6):
            assert len(binomial_tree(order)) == 2**order

    def test_binomial_root_degree(self):
        assert len(binomial_tree(3).root.children) == 3

    def test_knomial(self):
        spec = knomial_tree(3, 27)
        assert len(spec) == 27

    def test_knomial_exact_count(self):
        for n in (2, 5, 16, 100):
            assert len(knomial_tree(2, n)) == n

    def test_validation(self):
        with pytest.raises(TopologyError):
            binomial_tree(0)
        with pytest.raises(TopologyError):
            knomial_tree(1, 4)
        with pytest.raises(TopologyError):
            knomial_tree(2, 1)


class TestFig4b:
    def test_paper_shape(self):
        spec = unbalanced_fig4()
        assert spec.num_backends == 16
        # Root parents two internal heads + four back-ends = six-way.
        assert len(spec.root.children) == 6
        assert not is_balanced(spec)


class TestHostAllocator:
    def test_synthetic_hosts_unique(self):
        alloc = HostAllocator()
        slots = [alloc.next_slot() for _ in range(5)]
        assert len({s.host for s in slots}) == 5
        assert all(s.index == 0 for s in slots)

    def test_round_robin_with_indices(self):
        alloc = HostAllocator(["h1", "h2"])
        slots = [alloc.next_slot() for _ in range(4)]
        assert [(s.host, s.index) for s in slots] == [
            ("h1", 0),
            ("h2", 0),
            ("h1", 1),
            ("h2", 1),
        ]

    def test_generators_accept_host_list(self):
        spec = flat_topology(6, hosts=["a", "b", "c"])
        assert set(spec.hosts()) == {"a", "b", "c"}


class TestAnalysis:
    def test_stats(self):
        stats = analyze(balanced_tree(4, 2))
        assert stats.num_processes == 21
        assert stats.num_backends == 16
        assert stats.num_internal == 4
        assert stats.balanced
        assert stats.root_fanout == 4
        assert stats.fanout_histogram == {4: 5}
        assert "balanced" in stats.describe()

    def test_unbalanced_detected(self):
        assert not analyze(unbalanced_fig4()).balanced

    def test_levels(self):
        lv = levels(balanced_tree(2, 2))
        assert [len(x) for x in lv] == [1, 2, 4]

    def test_networkx_export(self):
        g = to_networkx(balanced_tree(2, 2))
        assert g.number_of_nodes() == 7
        assert g.number_of_edges() == 6
        roles = {d["role"] for _, d in g.nodes(data=True)}
        assert roles == {"frontend", "internal", "backend"}
        import networkx as nx

        assert nx.is_tree(g.to_undirected())
