"""Documentation lint: links, public-API docstrings, and code fences.

Three checks, all cheap enough for every CI run:

1. **Links** — every relative Markdown link in ``README.md`` and
   ``docs/*.md`` must resolve to a file in the repo, and a ``#anchor``
   fragment must match a heading in the target document (GitHub's
   slug rules: lowercase, punctuation stripped, spaces to dashes).
   External (``http(s)://``, ``mailto:``) links are not fetched.

2. **Docstrings** — every public module, class, function and method in
   the modules listed in ``DOCSTRING_MODULES`` (the observability and
   serving surfaces this repo documents in ``docs/observability.md``,
   ``docs/gateway.md`` and ``docs/api.md``) must carry a docstring.
   "Public" means the name and every enclosing scope avoid a leading
   underscore; ``__init__`` is exempt when its class is documented.

3. **Python fences** — every fenced ```` ```python ```` block in the
   tracked docs must ``compile()`` (syntax only; nothing is executed).
   Prose snippets that elide bodies with ``...`` stay valid Python, so
   this catches typos, bad indentation, and API drift pasted from old
   revisions.

Usage::

    python tools/check_docs.py

Exits 1 with one line per violation, 0 when clean.
"""

from __future__ import annotations

import ast
import re
import sys
import textwrap
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files (repo-relative) whose relative links must resolve.
DOC_FILES = [
    "README.md",
    "ROADMAP.md",
    *sorted(
        str(p.relative_to(REPO_ROOT)) for p in (REPO_ROOT / "docs").glob("*.md")
    ),
]

#: Modules (repo-relative) whose public API must be docstring-complete.
DOCSTRING_MODULES = [
    "src/repro/obs/__init__.py",
    "src/repro/obs/metrics.py",
    "src/repro/obs/snapshot.py",
    "src/repro/obs/tracing.py",
    "src/repro/core/network.py",
    "src/repro/gateway/__init__.py",
    "src/repro/gateway/admission.py",
    "src/repro/gateway/coalesce.py",
    "src/repro/gateway/gateway.py",
    "src/repro/gateway/query.py",
    "src/repro/gateway/responder.py",
    "src/repro/gateway/session.py",
]

# [text](target) — excludes images (![alt](...)) via the lookbehind.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_PY_FENCE_RE = re.compile(r"^```python[^\n]*\n(.*?)^```", re.DOTALL | re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor slug transform (close enough: strip
    Markdown emphasis/code ticks, lowercase, drop punctuation, dash
    the spaces)."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def heading_anchors(markdown: str) -> set:
    """All anchor slugs a Markdown document exposes."""
    body = _CODE_FENCE_RE.sub("", markdown)
    return {github_slug(m.group(1)) for m in _HEADING_RE.finditer(body)}


def iter_links(markdown: str) -> Iterator[str]:
    """Every non-image link target, with code fences masked out."""
    body = _CODE_FENCE_RE.sub("", markdown)
    for m in _LINK_RE.finditer(body):
        yield m.group(1)


def check_links(repo: Path) -> List[str]:
    """Broken-link report lines for every tracked doc file."""
    problems: List[str] = []
    for rel in DOC_FILES:
        doc = repo / rel
        if not doc.exists():
            continue
        text = doc.read_text()
        for target in iter_links(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(f"{rel}: broken link -> {target}")
                    continue
                if anchor and resolved.suffix == ".md":
                    if github_slug(anchor) not in heading_anchors(
                        resolved.read_text()
                    ):
                        problems.append(f"{rel}: missing anchor -> {target}")
            elif anchor:  # same-document fragment
                if github_slug(anchor) not in heading_anchors(text):
                    problems.append(f"{rel}: missing anchor -> {target}")
    return problems


def _public_defs(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (dotted name, node) for every public def/class, including
    methods of public classes."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node.name, node
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if sub.name.startswith("_"):
                            continue
                        yield f"{node.name}.{sub.name}", sub


def check_docstrings(repo: Path) -> List[str]:
    """Missing-docstring report lines for the listed modules."""
    problems: List[str] = []
    for rel in DOCSTRING_MODULES:
        path = repo / rel
        if not path.exists():
            problems.append(f"{rel}: module listed in check_docs.py is missing")
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            problems.append(f"{rel}: missing module docstring")
        for name, node in _public_defs(tree):
            if ast.get_docstring(node) is None:
                problems.append(
                    f"{rel}:{node.lineno}: missing docstring on {name}"
                )
    return problems


def check_python_fences(repo: Path) -> List[str]:
    """Syntax-error report lines for fenced ```python blocks.

    Each block is compiled (never executed) with the doc file and the
    fence's first line number as the filename, so a violation points
    at the exact snippet.
    """
    problems: List[str] = []
    for rel in DOC_FILES:
        doc = repo / rel
        if not doc.exists():
            continue
        text = doc.read_text()
        for m in _PY_FENCE_RE.finditer(text):
            line = text.count("\n", 0, m.start(1)) + 1
            source = textwrap.dedent(m.group(1))
            try:
                compile(source, f"{rel}:{line}", "exec")
            except SyntaxError as exc:
                problems.append(
                    f"{rel}:{line}: python fence does not compile "
                    f"({exc.msg}, fence line {exc.lineno})"
                )
    return problems


def main() -> int:
    """Run all three checks; print violations; exit non-zero on any."""
    problems = (
        check_links(REPO_ROOT)
        + check_docstrings(REPO_ROOT)
        + check_python_fences(REPO_ROOT)
    )
    for line in problems:
        print(line)
    if problems:
        print(f"FAIL: {len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"OK: links + docstrings + python fences clean across "
          f"{len(DOC_FILES)} docs, {len(DOCSTRING_MODULES)} modules")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
