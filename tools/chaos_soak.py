#!/usr/bin/env python
"""Nightly chaos soak: seeded random faults against live trees.

Every combination of recovery policy (fail-fast / degrade / repair)
and runtime (tcp / process / colocated) gets a soak: waves flow
continuously while a seeded :class:`repro.faultinject.FaultSchedule`
fires node kills and link cuts at random points in the first half of
the run.  One seed reproduces one fault trace exactly, so a nightly
failure replays locally with the seed from the log.

The invariants are the fault-tolerance layer's contract:

* **No torn waves** — every aggregate the front-end releases is an
  exact integer sum in ``[0, n]``: a lost contribution shrinks a
  wave, but nothing is ever double-counted.
* **fail-fast** surfaces a :class:`NetworkError` promptly after the
  first kill instead of limping along.
* **degrade** keeps completing waves over the survivors and never
  errors.
* **repair** returns to full-membership waves once the schedule has
  drained — orphans re-homed, routing and stream membership rebuilt.

``--churn`` additionally runs the full-size elastic-membership
acceptance: 16 back-ends join and 16 leave a live 64-leaf tree while
waves flow, every observed sum required to match a membership the
stream actually held (never a double-count, never a torn epoch).

Usage (nightly CI runs all nine policy x runtime combos plus churn)::

    PYTHONPATH=src python tools/chaos_soak.py --duration 60 --churn
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (  # noqa: E402
    DEGRADE,
    FAIL_FAST,
    REPAIR,
    Network,
    NetworkError,
)
from repro.faultinject import (  # noqa: E402
    FaultEvent,
    FaultInjector,
    FaultSchedule,
)
from repro.filters import TFILTER_SUM  # noqa: E402
from repro.topology import balanced_tree  # noqa: E402

POLICIES = {"fail_fast": FAIL_FAST, "degrade": DEGRADE, "repair": REPAIR}
RUNTIMES = ("tcp", "process", "colocated")


def _drive_wave(net, stream, timeout=2.0):
    """Broadcast one wave, reply 1 from every pollable back-end, and
    return the aggregated sum."""
    stream.send("%d", 0)
    deadline = time.monotonic() + timeout
    replied = set()
    while time.monotonic() < deadline:
        for rank, be in net.backends.items():
            if rank in replied or be.shut_down:
                continue
            try:
                got = be.poll()
            except Exception:
                replied.add(rank)
                continue
            if got is None:
                continue
            _, bstream = got
            try:
                bstream.send("%d", 1)
            except Exception:
                pass
            replied.add(rank)
        try:
            return stream.recv(timeout=0.02).values[0]
        except TimeoutError:
            continue
    raise TimeoutError("wave did not complete")


def _schedule(net, inj, policy_name, runtime, seed, horizon):
    """A seeded fault plan appropriate to the runtime.

    Process trees have no in-process comm nodes to address by label, so
    their plan draws SIGKILL targets from the spawned-process table with
    the same seeded no-replacement discipline FaultSchedule.random uses.
    """
    n_faults = 2 if policy_name == "repair" else 1
    if runtime == "process":
        rng = random.Random(seed)
        idxs = list(range(len(net._procs)))
        events = []
        for _ in range(min(n_faults, len(idxs))):
            i = idxs.pop(rng.randrange(len(idxs)))
            events.append(
                FaultEvent(rng.uniform(0.0, horizon), "kill_process", (i,))
            )
        events.sort(key=lambda e: e.at)
        return FaultSchedule(inj, events)
    actions = (
        ("kill_commnode",)
        if policy_name == "fail_fast"
        else ("kill_commnode", "sever_link")
    )
    return FaultSchedule.random(
        inj, seed=seed, n_faults=n_faults, horizon=horizon, actions=actions
    )


def soak(policy_name: str, runtime: str, seed: int, duration: float):
    """One soak; returns (waves_completed, fired_events, failures)."""
    kwargs = {"colocate": True} if runtime == "colocated" else {"transport": runtime}
    net = Network(
        balanced_tree(2, 3),
        policy=POLICIES[policy_name],
        heartbeat_interval=0.05,
        checkpoint_interval=0.05 if policy_name == "repair" else 0.0,
        **kwargs,
    )
    n = len(net.backends)
    waves, down, failures = 0, False, []
    try:
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        sched = _schedule(
            net, FaultInjector(net), policy_name, runtime, seed, duration / 2
        )
        sched.arm()
        t0 = time.monotonic()
        while time.monotonic() - t0 < duration:
            sched.poll()
            try:
                total = _drive_wave(net, stream)
            except TimeoutError:
                continue  # mid-recovery; the next wave retries
            except NetworkError:
                down = True
                break
            waves += 1
            if not (isinstance(total, int) and 0 <= total <= n):
                failures.append(f"torn wave: sum {total!r} outside [0, {n}]")
                break

        if policy_name == "fail_fast":
            if sched.fired and not down:
                grace = time.monotonic() + 10.0
                while time.monotonic() < grace and not down:
                    try:
                        _drive_wave(net, stream)
                    except TimeoutError:
                        pass
                    except NetworkError:
                        down = True
                if not down:
                    failures.append(
                        "fail-fast never surfaced a NetworkError after the kill"
                    )
        elif down:
            failures.append(
                f"{policy_name} surfaced a NetworkError during the soak"
            )
        elif policy_name == "repair" and not failures:
            grace = time.monotonic() + 30.0
            full = False
            while time.monotonic() < grace:
                try:
                    if _drive_wave(net, stream) == n:
                        full = True
                        break
                except TimeoutError:
                    continue
                except NetworkError:
                    failures.append("repair surfaced a NetworkError post-schedule")
                    break
            if not full and not failures:
                failures.append(f"repair never returned to full {n}-rank waves")
        if waves == 0 and not down:
            failures.append("no wave ever completed")
    finally:
        net.shutdown()
    return waves, sched.fired, failures


def churn_soak(seed: int, n_churn: int = 16):
    """The full-size elastic-membership acceptance run.

    16 joins and 16 leaves interleave on a live 64-leaf tcp tree under
    ``repair`` while waves flow.  A wave may complete *short* while a
    departure's unanswered backlog drains (the leaver's pending waves
    release without it rather than deadlocking), so the torn-epoch
    check is one-sided: no aggregate may ever *exceed* the largest
    membership it could belong to (a double-counted contribution), and
    after every transition the waves must converge to the exact new
    membership sum.
    """
    rng = random.Random(seed)
    net = Network(balanced_tree(4, 3), transport="tcp", policy=REPAIR)
    failures = []
    transitions = 0
    try:
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        size = len(net.backends)

        def waves_until(want, ceiling, timeout=30.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                try:
                    total = _drive_wave(net, stream)
                except TimeoutError:
                    continue
                if total > ceiling:
                    failures.append(
                        f"torn wave: sum {total} exceeds every membership "
                        f"in flight (max {ceiling}) — a double-counted "
                        "contribution"
                    )
                    return False
                if total == want:
                    return True
            failures.append(f"waves never reached membership sum {want}")
            return False

        if not waves_until(size, size):
            return transitions, failures
        for _ in range(n_churn):
            net.attach_backend()
            size += 1
            if not waves_until(size, size):
                return transitions, failures
            transitions += 1
            live = [r for r, be in net.backends.items() if not be.shut_down]
            net.backends[rng.choice(live)].leave()
            size -= 1
            if not waves_until(size, size + 1):
                return transitions, failures
            transitions += 1
        recovery = net.stats()["recovery"]
        if recovery["members_joined"] < n_churn:
            failures.append(
                f"only {recovery['members_joined']}/{n_churn} joins counted"
            )
        if recovery["members_left"] < n_churn:
            failures.append(
                f"only {recovery['members_left']}/{n_churn} leaves counted"
            )
        if recovery["nodes_failed"] != 0:
            failures.append(
                "clean churn was failure-accounted: "
                f"nodes_failed={recovery['nodes_failed']}"
            )
    finally:
        net.shutdown()
    return transitions, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--duration", type=float, default=60.0, help="seconds per soak combo"
    )
    parser.add_argument(
        "--policies", default=",".join(POLICIES), help="comma-separated subset"
    )
    parser.add_argument(
        "--runtimes", default=",".join(RUNTIMES), help="comma-separated subset"
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="also run the 64-leaf 16-join/16-leave churn acceptance",
    )
    args = parser.parse_args(argv)

    policies = [p for p in args.policies.split(",") if p]
    runtimes = [r for r in args.runtimes.split(",") if r]
    unknown = [p for p in policies if p not in POLICIES] + [
        r for r in runtimes if r not in RUNTIMES
    ]
    if unknown:
        parser.error(f"unknown policy/runtime: {', '.join(unknown)}")

    failed = False
    combo_seed = args.seed
    for policy_name in policies:
        for runtime in runtimes:
            combo_seed += 13
            waves, fired, failures = soak(
                policy_name, runtime, combo_seed, args.duration
            )
            trace = "; ".join(f"{e.action}{e.args}@{e.at:.2f}s" for e in fired)
            status = "ok" if not failures else "FAILED"
            print(
                f"{policy_name:<10} {runtime:<10} seed={combo_seed:<4} "
                f"{waves:>5} waves  [{trace}]  {status}"
            )
            for failure in failures:
                print(f"    {failure}", file=sys.stderr)
                failed = True

    if args.churn:
        transitions, failures = churn_soak(args.seed)
        status = "ok" if not failures else "FAILED"
        print(
            f"{'churn':<10} {'tcp':<10} seed={args.seed:<4} "
            f"{transitions:>5} transitions  [16 joins, 16 leaves]  {status}"
        )
        for failure in failures:
            print(f"    {failure}", file=sys.stderr)
            failed = True

    if failed:
        print("FAIL: chaos soak invariants violated", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
