#!/usr/bin/env python3
"""A cluster-administration tool on MRNet (the paper's second use case).

The paper pitches MRNet for "scalable performance and system
administration tools".  This example is the admin half: a front-end
managing 64 nodes through an 8-way tree, using

* **concatenation** to inventory every node (hostname, kernel, RAM);
* the custom **equivalence-class filter** to audit configuration
  drift — nodes checksum their config, the tree bins them, and the
  admin fetches full configs only from one representative per class;
* the custom **histogram filter** to summarise per-node load averages
  into a fixed set of bins without shipping raw values; and
* **min/max/sum reductions** for a fleet health line.

Run:  python examples/cluster_admin.py
"""

import random

from repro import Network, TFILTER_CONCAT, TFILTER_MAX, TFILTER_MIN, TFILTER_SUM
from repro.filters import HistogramFilter
from repro.paradyn.eqclass import EquivalenceClasses, EquivalenceClassFilter
from repro.topology import balanced_tree

N_NODES = 64
TAG_INVENTORY, TAG_CONFIG, TAG_LOAD, TAG_HEALTH = 200, 201, 202, 203


def node_config(rank: int) -> str:
    """This node's config; a handful of stragglers run an old sshd."""
    sshd = "sshd-9.6p1" if rank % 17 else "sshd-9.3p2"
    return f"kernel=6.1.0 {sshd} ntp=on selinux=enforcing"


def main() -> None:
    rng = random.Random(7)
    with Network(balanced_tree(fanout=8, depth=2)) as net:
        comm = net.get_broadcast_communicator()
        # Load the two custom filters network-wide.
        eq_id = net.registry.register_transform(EquivalenceClassFilter())
        hist_id = net.registry.register_transform(
            HistogramFilter(edges=[0.5, 1.0, 2.0, 4.0], name="load-histogram")
        )

        # --- inventory: concatenation --------------------------------
        inventory = net.new_stream(comm, transform=TFILTER_CONCAT)
        inventory.send("%d", 0, tag=TAG_INVENTORY)
        for rank, be in sorted(net.backends.items()):
            _, bstream = be.recv(timeout=10)
            bstream.send(
                "%s", f"node{rank:03d}|linux-6.1.0|{16 + 16 * (rank % 2)}GiB"
            )
        (rows,) = inventory.recv_values(timeout=10)
        print(f"inventory: {len(rows)} nodes, e.g. {rows[0]}")

        # --- config audit: equivalence classes ------------------------
        audit = net.new_stream(comm, transform=eq_id)
        audit.send("%d", 0, tag=TAG_CONFIG)
        configs = {}
        for rank, be in sorted(net.backends.items()):
            _, bstream = be.recv(timeout=10)
            cfg = node_config(rank)
            configs[rank] = cfg
            checksum = hash(cfg) & (2**63 - 1)
            bstream.send("%uld %ud", checksum, rank)
        classes = EquivalenceClasses.from_packet(audit.recv(timeout=10))
        print(f"\nconfig audit: {classes.num_classes} configuration classes")
        for checksum, members in sorted(
            classes.classes.items(), key=lambda kv: -len(kv[1])
        ):
            rep = members[0]
            print(f"  class of {len(members):2d} nodes "
                  f"(rep node{rep:03d}): {configs[rep]}")
        assert classes.num_classes == 2  # the drifted sshd stands out

        # --- load histogram: custom reduction --------------------------
        loads = {
            rank: rng.lognormvariate(0.0, 0.8) for rank in sorted(net.backends)
        }
        hist = net.new_stream(comm, transform=hist_id)
        hist.send("%d", 0, tag=TAG_LOAD)
        for rank, be in sorted(net.backends.items()):
            _, bstream = be.recv(timeout=10)
            bstream.send("%lf", loads[rank])
        (counts,) = hist.recv_values(timeout=10)
        labels = ["<0.5", "0.5-1", "1-2", "2-4", ">=4"]
        print("\nload-average histogram (aggregated in-tree):")
        for label, count in zip(labels, counts):
            print(f"  {label:>6}: {'#' * count} ({count})")
        assert sum(counts) == N_NODES

        # --- health line: stock reductions -----------------------------
        stats = {}
        for name, fid in (("min", TFILTER_MIN), ("max", TFILTER_MAX),
                          ("sum", TFILTER_SUM)):
            s = net.new_stream(comm, transform=fid)
            s.send("%d", 0, tag=TAG_HEALTH)
            for rank, be in sorted(net.backends.items()):
                _, bstream = be.recv(timeout=10)
                bstream.send("%lf", loads[rank])
            (stats[name],) = s.recv_values(timeout=10)
        print(f"\nfleet load: min={stats['min']:.2f} "
              f"max={stats['max']:.2f} mean={stats['sum'] / N_NODES:.2f}")
        assert abs(stats["sum"] - sum(loads.values())) < 1e-9
        print("\nOK: admin sweep complete over a 73-process tree")


if __name__ == "__main__":
    main()
