#!/usr/bin/env python3
"""Quickstart: the paper's Figure 2 tool, end to end.

Builds a 16-back-end MRNet tree (4-way fan-out, depth 2), creates a
stream over the auto-generated broadcast communicator with the
"floating point maximum" filter, broadcasts an initializer downstream,
has every back-end reply with a value, and receives the single
aggregated maximum at the front-end — the exact flow of the paper's
``front_end_main`` / ``back_end_main`` sample code.

Run:  python examples/quickstart.py
"""

import random

from repro import Network, SFILTER_WAITFORALL, TFILTER_MAX
from repro.topology import balanced_tree, serialize_config

FLOAT_MAX_INIT = 17  # the broadcast "go" token, as in Figure 2


def main() -> None:
    # The paper drives topology from a configuration file; show the
    # equivalent file for the tree we generate.
    topology = balanced_tree(fanout=4, depth=2)
    print("MRNet configuration file for this run:")
    print(serialize_config(topology, header="Figure 2 quickstart: 4x4 tree"))

    # front_end_main: instantiate the network, grab the broadcast
    # communicator, open a float-max stream.
    with Network(topology) as net:
        comm = net.get_broadcast_communicator()
        print(f"network up: {net}")
        print(f"broadcast communicator: {comm}")

        stream = net.new_stream(
            comm, transform=TFILTER_MAX, sync=SFILTER_WAITFORALL
        )
        stream.send("%d", FLOAT_MAX_INIT)
        print(f"front-end broadcast init={FLOAT_MAX_INIT} on stream "
              f"{stream.stream_id}")

        # back_end_main for every back-end: stream-anonymous recv, then
        # send one float upstream.
        rng = random.Random(42)
        sent = {}
        for rank, backend in sorted(net.backends.items()):
            packet, bstream = backend.recv(timeout=10)
            (val,) = packet.unpack()
            assert val == FLOAT_MAX_INIT
            rand_float = rng.uniform(0.0, 100.0)
            sent[rank] = rand_float
            bstream.send("%lf", rand_float)

        # The tree's max-filters aggregate; one packet reaches the root.
        (result,) = stream.recv_values(timeout=10)
        print(f"\nback-end values: "
              f"{', '.join(f'{v:.2f}' for v in sent.values())}")
        print(f"front-end received maximum: {result:.2f}")
        assert result == max(sent.values())
        print("OK: matches max of what the back-ends sent")


if __name__ == "__main__":
    main()
