#!/usr/bin/env python3
"""Clock-skew detection demo (paper §3.1 / §4.2.1).

Runs the two-phase MRNet clock-skew algorithm and the direct
front-end-to-daemon baseline over the simulated cluster (skewed host
clocks, jittered asymmetric links — see repro.sim.clocks), on the
paper's configuration: 64 daemons under a four-way fan-out, three-level
topology.  Prints per-daemon detected-vs-true skews and the error
summary the paper reports (MRNet ≈ 10.5 % average error vs ≈ 17.5 %
for direct communication).

Run:  python examples/clock_skew_demo.py
"""

import numpy as np

from repro.paradyn.clockskew import run_skew_experiment
from repro.topology import analyze, balanced_tree


def main() -> None:
    topology = balanced_tree(fanout=4, depth=3)  # 64 daemons, 3 levels
    print(f"topology: {analyze(topology).describe()}")

    result = run_skew_experiment(
        topology, local_trials=20, direct_trials=100, seed=2026
    )

    print(f"\n{'daemon':>6}  {'true (ms)':>10}  {'MRNet (ms)':>10}  "
          f"{'direct (ms)':>11}")
    for rank in sorted(result.true_skew)[:10]:
        print(f"{rank:6d}  {result.true_skew[rank] * 1e3:10.3f}  "
              f"{result.mrnet_skew[rank] * 1e3:10.3f}  "
              f"{result.direct_skew[rank] * 1e3:11.3f}")
    print(f"... ({len(result.true_skew)} daemons total)")

    m_mean, m_std = result.summary("mrnet")
    d_mean, d_std = result.summary("direct")
    print("\nerror vs the globally-synchronous (oracle) clock:")
    print(f"  MRNet two-phase scheme : mean {m_mean:5.1f}%  sigma {m_std:6.1f}")
    print(f"  direct communication   : mean {d_mean:5.1f}%  sigma {d_std:6.1f}")
    print("  (paper, Blue Pacific   : mean  10.5%  sigma   80.4  vs  "
          "17.5%  sigma 78.9)")

    # Averaged over several runs the tree-based scheme wins, while one
    # run shows the usual variance.
    means = []
    for seed in range(10):
        r = run_skew_experiment(topology, seed=seed)
        means.append((r.summary("mrnet")[0], r.summary("direct")[0]))
    m_avg = float(np.mean([m for m, _ in means]))
    d_avg = float(np.mean([d for _, d in means]))
    print(f"\nover 10 runs: MRNet {m_avg:.1f}% vs direct {d_avg:.1f}% "
          f"average error")
    assert m_avg < d_avg
    print("OK: the tree-based scheme is more accurate and needs only "
          "O(log n) sequential exchanges per level instead of O(n) at "
          "the front-end")


if __name__ == "__main__":
    main()
