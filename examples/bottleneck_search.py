#!/usr/bin/env python3
"""Automated bottleneck search — Paradyn's Performance Consultant over
MRNet subset streams.

"The context for our work is Paradyn, a parallel performance tool
supporting automated application performance problem searches" (§1).
This example monitors a 64-rank synthetic application in which three
ranks spend pathological time in synchronization, and lets the
consultant *find them* by bisection: each probe is one aggregated
max-reduction over a subset communicator, so isolating k culprits
costs O(k·log n) collective queries instead of n direct ones.

Run:  python examples/bottleneck_search.py
"""

from repro.core import Network
from repro.paradyn import (
    ParadynDaemon,
    ParadynFrontEnd,
    PerformanceConsultant,
    default_metrics,
    synthetic_executable,
)
from repro.topology import balanced_tree

N_RANKS = 64
CULPRITS = {9, 33, 50}
THRESHOLD = 0.25  # seconds of sync_wait per second


def main() -> None:
    with Network(balanced_tree(fanout=8, depth=2)) as net:
        exe = synthetic_executable()
        daemons = [
            ParadynDaemon(net.backends[rank], exe)
            for rank in sorted(net.backends)
        ]
        frontend = ParadynFrontEnd(net)
        frontend.run_startup(daemons, default_metrics(6))

        # The synthetic application: healthy ranks barely synchronize;
        # the culprits burn 60% of their time in sync_wait.
        for d in daemons:
            d.set_rate("sync_wait", 0.6 if d.rank in CULPRITS else 0.03)

        consultant = PerformanceConsultant(frontend)
        print(f"searching {N_RANKS} ranks for sync_wait > "
              f"{THRESHOLD:.2f} s/s ...\n")
        result = consultant.find_culprits(daemons, "sync_wait", THRESHOLD)

        print(f"{'group':>24}  {'max rate':>8}  verdict")
        for ranks, group_max in result.trace:
            label = (
                f"[{ranks[0]}..{ranks[-1]}] ({len(ranks)})"
                if len(ranks) > 1
                else f"rank {ranks[0]}"
            )
            verdict = "refine" if group_max > THRESHOLD else "clear"
            if len(ranks) == 1 and group_max > THRESHOLD:
                verdict = "CULPRIT"
            print(f"{label:>24}  {group_max:8.3f}  {verdict}")

        direct = consultant.direct_scan(daemons, "sync_wait", THRESHOLD)
        print(f"\nculprits found: {result.culprits}")
        print(f"aggregate queries: {result.queries} "
              f"(direct per-daemon scan would use {direct.queries})")
        assert result.culprits == sorted(CULPRITS) == direct.culprits
        assert result.queries < direct.queries
        print("OK: tree search isolates the bottleneck ranks with "
              f"{direct.queries - result.queries} fewer queries")


if __name__ == "__main__":
    main()
