#!/usr/bin/env python3
"""Simulation playground: cost out a deployment before running it.

Uses the Blue Pacific stand-in to answer the questions §2.6 says a
tool builder must ask — what does my topology choice cost in start-up
latency, collective latency, sustained throughput, and internal-process
CPU — and exports a Chrome/Perfetto trace of one pipelined-reduction
experiment so the difference between a flat tool and a tree is
*visible* (open sim_flat.trace.json / sim_tree.trace.json at
https://ui.perfetto.dev).

Run:  python examples/sim_playground.py
"""

from repro.sim import (
    BLUE_PACIFIC,
    CollectiveSim,
    SimTrace,
    simulate_instantiation,
)
from repro.topology import analyze, balanced_tree_for, flat_topology

N_BACKENDS = 128


def cost_out(name, topo):
    inst = simulate_instantiation(topo).latency
    rt = CollectiveSim(topo).roundtrip().latency
    thr_sim = CollectiveSim(topo)
    thr = thr_sim.pipelined_reductions(waves=50).throughput
    fe_util = thr_sim.cpu_utilizations()[
        f"{topo.root.host}:{topo.root.index}"
    ]
    print(
        f"  {name:14s} {analyze(topo).describe()}\n"
        f"  {'':14s} start-up {inst:7.1f}s | round-trip {rt * 1e3:6.1f}ms | "
        f"throughput {thr:5.1f} ops/s | FE cpu {fe_util:.0%}"
    )
    return topo


def main() -> None:
    print(f"== costing a {N_BACKENDS}-back-end tool on the simulated "
          f"cluster (rsh={BLUE_PACIFIC.rsh_cost}s, "
          f"g={BLUE_PACIFIC.logp.g * 1e3:.1f}ms) ==\n")
    flat = cost_out("flat", flat_topology(N_BACKENDS))
    print()
    tree = cost_out("8-way tree", balanced_tree_for(8, N_BACKENDS))

    print("\n== exporting Perfetto traces of 10 pipelined reductions ==")
    for name, topo in (("flat", flat), ("tree", tree)):
        trace = SimTrace()
        CollectiveSim(topo, trace=trace).pipelined_reductions(waves=10)
        path = f"sim_{name}.trace.json"
        with open(path, "w") as f:
            f.write(trace.to_chrome_trace())
        s = trace.summary()
        print(f"  {path}: {s['messages']} messages, busiest receiver "
              f"{s['busiest_receiver']} ({s['busiest_receiver_msgs']} msgs), "
              f"makespan {s['makespan']:.2f}s")

    print("\nOK: the flat front-end receives every message of every wave; "
          "the tree's front-end receives 8 per wave")


if __name__ == "__main__":
    main()
