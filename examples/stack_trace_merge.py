#!/usr/bin/env python3
"""Stack-trace aggregation over MRNet — the "where is my job stuck?"
tool.

The paper positions MRNet as infrastructure for scalable debugging and
administration tools; the canonical post-publication example is
merging every process's call stack into one annotated prefix tree, so
an operator sees at a glance that 510 of 512 ranks sit in
``mpi_waitall`` while two diverged.  This example runs exactly that
over a live 64-back-end tree using the custom
:class:`~repro.filters.pathtree.PathTreeFilter` — a structured custom
reduction loaded with the same mechanism as any user filter (§2.4).

Run:  python examples/stack_trace_merge.py
"""

from repro import Network
from repro.filters.pathtree import PathTree, PathTreeFilter
from repro.topology import balanced_tree

N_RANKS = 64
TAG_COLLECT_STACKS = 600


def stack_of(rank: int):
    """The simulated application's current call stack per rank.

    Most ranks wait in a collective; rank 17 is stuck in a solver
    loop, rank 40 crashed into an error handler — the classic
    "find the stragglers" scenario.
    """
    if rank == 17:
        return ("main", "hypre_solve", "relax_sweep", "spin_on_flag")
    if rank == 40:
        return ("main", "hypre_solve", "exchange_halo", "segv_handler")
    if rank % 2:
        return ("main", "hypre_solve", "exchange_halo", "mpi_waitall")
    return ("main", "hypre_solve", "exchange_halo", "mpi_waitall",
            "poll_progress")


def main() -> None:
    with Network(balanced_tree(fanout=8, depth=2)) as net:
        fid = net.registry.register_transform(PathTreeFilter())
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=fid)

        stream.send("%d", 0, tag=TAG_COLLECT_STACKS)
        for rank, backend in sorted(net.backends.items()):
            _, bstream = backend.recv(timeout=10)
            bstream.send("%as", stack_of(rank))

        packet = stream.recv(timeout=10)
        tree = PathTree.from_arrays(*packet.unpack())

        print(f"merged stack tree from {tree.num_processes} ranks "
              f"({tree.num_nodes} nodes, "
              f"{packet.nbytes} bytes on the wire):\n")
        print(tree.render())

        print("\ndistinct leaf states:")
        for path, count in sorted(tree.paths(), key=lambda pc: -pc[1]):
            print(f"  {count:3d} rank(s): {' > '.join(path)}")

        # The operators' answer: who is NOT in the collective?
        stragglers = [
            (path, count)
            for path, count in tree.paths()
            if "mpi_waitall" not in path
        ]
        assert sum(c for _, c in stragglers) == 2
        print("\nOK: 62 ranks in mpi_waitall, 2 stragglers isolated "
              "from one aggregated packet")


if __name__ == "__main__":
    main()
