#!/usr/bin/env python3
"""Paradyn-style performance monitoring (paper §3).

Runs the complete Paradyn-over-MRNet flow on a live threaded network:

1. scalable tool start-up — concatenated self-reports, MDL broadcast
   with equivalence-class metric exchange, code/call-graph checksum
   classes with representative-only full transfers, done-reduction;
2. distributed performance data aggregation — a CPU-utilization metric
   whose samples are produced by daemons with *skewed clocks* and
   *asynchronous sampling*, aggregated in the tree by the custom
   time-aligned Performance Data Aggregation filter (Figure 6).

Run:  python examples/perf_monitor.py
"""

from repro.core import Network
from repro.paradyn import (
    ParadynDaemon,
    ParadynFrontEnd,
    default_metrics,
    synthetic_executable,
)
from repro.topology import balanced_tree

N_BACKENDS = 16
INTERVAL = 0.5  # output sample interval (seconds of application time)
ROUNDS = 6  # sampling rounds per daemon


def main() -> None:
    topology = balanced_tree(fanout=4, depth=2)
    with Network(topology) as net:
        exe = synthetic_executable()  # the smg2000 stand-in: 434 functions
        daemons = [
            ParadynDaemon(
                net.backends[rank],
                exe,
                clock_offset=0.002 * rank,  # per-host clock skew
            )
            for rank in sorted(net.backends)
        ]
        frontend = ParadynFrontEnd(net)

        print(f"== tool start-up over {net} ==")
        report = frontend.run_startup(daemons, default_metrics(8))
        print(f"daemons reported:      {len(report.daemons)}")
        print(f"code eq classes:       {report.code_classes.num_classes} "
              f"(homogeneous cluster -> full data from "
              f"{len(report.code_resources)} representative)")
        rep_rank, functions = next(iter(report.code_resources.items()))
        print(f"functions from rank {rep_rank}: {len(functions)} "
              f"(e.g. {functions[0]})")
        print(f"machine resources:     {len(report.machine_resources)}")
        print(f"metrics supported:     {len(report.metric_names)}")
        print(f"done reductions:       {report.done_count}")

        print("\n== monitoring: global cpu_utilization ==")
        stream = frontend.enable_metric(
            daemons, "cpu_utilization", interval=INTERVAL, op="sum"
        )
        print(f"metric stream {stream.stream_id} bound to the "
              f"time-aligned aggregation filter at every tree level")

        # Each daemon reports utilization 0.5 (0.5 cpu-seconds per second)
        # with its own sampling period.  Timestamps come from the
        # daemon's skewed clock; the daemons correct them with the skew
        # the front-end detected at start-up — which is exactly what
        # the skew-detection phase is for.
        for d in daemons:
            detected = report.clock_skews[d.rank]
            period = INTERVAL * (0.9 + 0.0125 * d.rank)  # asynchronous rates
            t = 0.0
            while t < ROUNDS * INTERVAL:
                end = t + period
                d.emit_sample(
                    "cpu_utilization", 0.5 * period, t - detected, end - detected
                )
                t = end

        samples = frontend.collect_samples("cpu_utilization", ROUNDS - 1)
        print(f"\n{'interval':>16}  {'sum util':>9}  {'per daemon':>10}")
        for s in samples:
            rate = s.value / (s.end - s.start)
            print(f"[{s.start:5.2f}, {s.end:5.2f})  {rate:9.3f}  "
                  f"{rate / N_BACKENDS:10.4f}")
        # Every daemon contributes exactly 0.5 utilization per interval,
        # i.e. 0.5 * INTERVAL cpu-seconds.
        expected = 0.5 * INTERVAL * N_BACKENDS
        assert all(abs(s.value - expected) < 1e-6 for s in samples)
        print("\nOK: every global sample shows utilization 0.5 x 16 "
              "despite skewed clocks and asynchronous sampling")


if __name__ == "__main__":
    main()
