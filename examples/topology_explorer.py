#!/usr/bin/env python3
"""Topology explorer: configuration files, generators, and the §2.6
balanced-vs-unbalanced analysis (Figure 4).

Shows the topology toolbox: generate flat / k-ary / k-nomial / the
paper's Figure 4b unbalanced tree, serialize and re-parse MRNet
configuration files, and score each layout with the LogP model the
paper uses — single-operation broadcast latency vs. the pipelined
operation gap that determines sustained throughput.

Run:  python examples/topology_explorer.py
"""

from repro.sim.logp import (
    LogGPParams,
    broadcast_latency,
    injection_gap,
    pipelined_throughput,
)
from repro.topology import (
    analyze,
    balanced_tree,
    balanced_tree_for,
    binomial_tree,
    flat_topology,
    knomial_tree,
    parse_config,
    serialize_config,
    unbalanced_fig4,
)

# Gap-dominated LogP parameters (the §2.6 regime).
P = LogGPParams(L=20e-6, o=10e-6, g=1e-3, G=0.0)


def main() -> None:
    print("== generators ==")
    zoo = {
        "flat(16)": flat_topology(16),
        "balanced 4-ary depth 2 (Fig 4a)": balanced_tree(4, 2),
        "balanced 2-ary depth 4": balanced_tree(2, 4),
        "unbalanced binomial hybrid (Fig 4b)": unbalanced_fig4(),
        "balanced-for(8, 600)": balanced_tree_for(8, 600),
        "binomial B4": binomial_tree(4),
        "3-nomial over 27": knomial_tree(3, 27),
    }
    for name, spec in zoo.items():
        print(f"  {name:36s} {analyze(spec).describe()}")

    print("\n== configuration file round-trip ==")
    spec = balanced_tree(2, 2)
    text = serialize_config(spec, header="2-ary depth-2 example")
    print(text)
    reparsed = parse_config(text)
    assert [n.label for n in reparsed.nodes()] == [n.label for n in spec.nodes()]
    print("parse(serialize(t)) == t: OK")

    print("== Figure 4: balanced vs unbalanced, 16 back-ends ==")
    print(f"  (LogP: L={P.L * 1e6:.0f}us o={P.o * 1e6:.0f}us "
          f"g={P.g * 1e3:.1f}ms)")
    header = (f"  {'topology':28s} {'bcast latency':>13s} "
              f"{'injection gap':>13s} {'pipelined ops/s':>15s}")
    print(header)
    for name, spec in (
        ("balanced 4-ary (Fig 4a)", balanced_tree(4, 2)),
        ("unbalanced hybrid (Fig 4b)", unbalanced_fig4()),
    ):
        print(f"  {name:28s} {broadcast_latency(spec, P) * 1e3:11.2f}ms "
              f"{injection_gap(spec, P) * 1e3:11.2f}ms "
              f"{pipelined_throughput(spec, P):15.1f}")
    bal, unbal = balanced_tree(4, 2), unbalanced_fig4()
    assert broadcast_latency(unbal, P) < broadcast_latency(bal, P)
    assert pipelined_throughput(bal, P) > pipelined_throughput(unbal, P)
    print("\nOK: the unbalanced tree wins one-shot latency, the balanced "
          "tree wins sustained throughput -- why the paper's experiments "
          "use balanced trees (§2.6)")


if __name__ == "__main__":
    main()
